"""Unit tests for cache statistics snapshots."""

import pytest

from repro.cache import CacheStats


def sample():
    return CacheStats(
        l1_refs=1000,
        l1_misses=200,
        l2_refs=200,
        l2_misses=100,
        l3_refs=100,
        l3_misses=25,
    )


class TestRates:
    def test_l1_miss_rate(self):
        assert sample().l1_miss_rate == 0.2

    def test_l2_and_l3_miss_rates(self):
        assert sample().l2_miss_rate == 0.5
        assert sample().l3_miss_rate == 0.25

    def test_l3_ratio(self):
        assert sample().l3_ratio == 0.1

    def test_cache_miss_rate(self):
        assert sample().cache_miss_rate == 0.025

    def test_memory_accesses(self):
        assert sample().memory_accesses == 25

    def test_zero_stats_have_zero_rates(self):
        zero = CacheStats.zero()
        assert zero.l1_miss_rate == 0.0
        assert zero.l2_miss_rate == 0.0
        assert zero.l3_miss_rate == 0.0
        assert zero.l3_ratio == 0.0
        assert zero.cache_miss_rate == 0.0


class TestArithmetic:
    def test_addition(self):
        total = sample() + sample()
        assert total.l1_refs == 2000
        assert total.l3_misses == 50
        assert total.l1_miss_rate == 0.2  # rates preserved

    def test_subtraction(self):
        diff = (sample() + sample()) - sample()
        assert diff == sample()

    def test_zero_is_identity(self):
        assert sample() + CacheStats.zero() == sample()


class TestTableRow:
    def test_columns(self):
        row = sample().table_row()
        assert row["L1-ref"] == 1000
        assert row["L1-mr"] == pytest.approx(0.2)
        assert row["L3-ref"] == 100
        assert row["L3-r"] == pytest.approx(0.1)
        assert row["Cache-mr"] == pytest.approx(0.025)
