"""Tests for the vectorised trace-replay cache backend.

The contract under test: ``hit_mask`` / ``CacheHierarchy.replay`` /
``Memory(cache_backend="replay")`` are *exactly* equivalent to the
scalar step path — same hit/miss verdicts, same counters, same costs —
for every all-LRU geometry, and degrade gracefully everywhere else.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import base as algorithms
from repro.cache import CacheHierarchy, CacheLevel, Memory
from repro.cache.replay import (
    COLD,
    TraceBuffer,
    count_prior_greater,
    hit_mask,
    lru_hit_mask,
    stack_distances,
)
from repro.cache.reuse import (
    RecordingHierarchy,
    lru_misses,
    reuse_distances,
)
from repro.errors import InvalidParameterError


def scalar_hits(lines, num_sets, ways, policy="lru"):
    """Reference verdicts: one scalar CacheLevel stepped per access."""
    level = CacheLevel(
        num_sets * ways * 64, 64, ways, "ref", policy=policy
    )
    return np.array([level.access(line) for line in lines], dtype=bool)


def make_hierarchy(geometries, policy="lru"):
    """Hierarchy from (num_sets, ways) pairs, 64-byte lines."""
    return CacheHierarchy(
        [
            CacheLevel(
                num_sets * ways * 64, 64, ways, f"L{i + 1}",
                policy=policy,
            )
            for i, (num_sets, ways) in enumerate(geometries)
        ]
    )


# Trace generator shared by the property tests: skewed line ids make
# warm/cold and hit/miss populations both non-trivial.
lines_strategy = st.lists(
    st.integers(min_value=0, max_value=40), min_size=0, max_size=300
)


class TestCountPriorGreater:
    def test_brute_force(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            n = int(rng.integers(0, 80))
            values = rng.integers(-5, 30, size=n)
            expected = np.array(
                [
                    int(np.sum(values[:t] > values[t]))
                    for t in range(n)
                ],
                dtype=np.int64,
            )
            got = count_prior_greater(values)
            assert np.array_equal(got, expected)

    def test_empty_and_single(self):
        assert count_prior_greater([]).shape == (0,)
        assert count_prior_greater([7]).tolist() == [0]


class TestStackDistances:
    def test_matches_reuse_distances_single_set(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            trace = rng.integers(0, 25, size=int(rng.integers(1, 200)))
            assert np.array_equal(
                stack_distances(trace), reuse_distances(trace)
            )

    def test_per_set_equals_split_traces(self):
        rng = np.random.default_rng(2)
        trace = rng.integers(0, 64, size=400)
        num_sets = 8
        got = stack_distances(trace, num_sets)
        sets = trace & (num_sets - 1)
        for s in range(num_sets):
            mask = sets == s
            assert np.array_equal(
                got[mask], reuse_distances(trace[mask])
            )

    def test_rejects_bad_num_sets(self):
        with pytest.raises(InvalidParameterError, match="power of two"):
            stack_distances([1, 2], num_sets=3)

    def test_cold_marks_first_occurrences(self):
        distances = stack_distances([5, 6, 5, 6])
        assert distances.tolist() == [COLD, COLD, 1, 1]


class TestHitMask:
    @settings(max_examples=60, deadline=None)
    @given(lines=lines_strategy)
    def test_matches_scalar_level(self, lines):
        for num_sets in (1, 2, 8):
            for ways in (1, 2, 8, 64):
                got = hit_mask(lines, num_sets, ways)
                assert np.array_equal(
                    got, scalar_hits(lines, num_sets, ways)
                )

    def test_blocked_and_reference_agree_on_long_traces(self):
        # Long enough to exercise multi-block rows, the prefix scan
        # and the short-set shortcut at once.
        rng = np.random.default_rng(3)
        trace = np.concatenate(
            [
                (rng.zipf(1.4, size=4000) % 900),
                np.arange(2000) % 1100,  # sequential runs
            ]
        )
        rng.shuffle(trace[::3])
        for num_sets, ways in ((1, 4), (8, 8), (64, 8), (64, 16)):
            fast = hit_mask(trace, num_sets, ways)
            slow = lru_hit_mask(trace, num_sets, ways)
            assert np.array_equal(fast, slow)

    def test_fully_associative_matches_lru_misses_oracle(self):
        rng = np.random.default_rng(4)
        trace = rng.integers(0, 50, size=600)
        for capacity in (1, 4, 16):
            mask = hit_mask(trace, 1, capacity)
            assert int((~mask).sum()) == lru_misses(
                reuse_distances(trace), capacity
            )

    def test_rejects_bad_geometry(self):
        with pytest.raises(InvalidParameterError, match="power of two"):
            hit_mask([1], 3, 2)
        with pytest.raises(InvalidParameterError, match="positive"):
            hit_mask([1], 4, 0)

    def test_huge_line_ids_use_reference_path(self):
        # Beyond FAST_LINE_LIMIT the blocked path must defer, not
        # misclassify.
        trace = np.array([1 << 40, 5, 1 << 40, 5, 1 << 40])
        got = hit_mask(trace, 2, 2)
        assert np.array_equal(got, scalar_hits(trace, 2, 2))


class TestHierarchyReplay:
    GEOMETRIES = [
        [(2, 1)],
        [(2, 2), (8, 2)],
        [(1, 4), (2, 8), (8, 8)],
        [(2, 2), (4, 2), (8, 4), (16, 4)],  # 4 levels
    ]

    @settings(max_examples=40, deadline=None)
    @given(lines=lines_strategy)
    def test_matches_step_trace(self, lines):
        for geometry in self.GEOMETRIES:
            h_step = make_hierarchy(geometry)
            h_replay = make_hierarchy(geometry)
            serving_step = h_step.step_trace(lines)
            serving_replay = h_replay.replay(lines)
            assert np.array_equal(serving_step, serving_replay)
            assert [
                (level.refs, level.misses) for level in h_step.levels
            ] == [
                (level.refs, level.misses)
                for level in h_replay.levels
            ]

    def test_replay_rejects_non_lru(self):
        hierarchy = make_hierarchy([(2, 2)], policy="fifo")
        assert hierarchy.supports_replay is False
        with pytest.raises(InvalidParameterError, match="LRU"):
            hierarchy.replay([1, 2, 3])

    def test_step_trace_works_for_any_policy(self):
        for policy in ("fifo", "random"):
            hierarchy = make_hierarchy([(2, 2)], policy=policy)
            rng = np.random.default_rng(5)
            trace = rng.integers(0, 12, size=200)
            serving = hierarchy.step_trace(trace)
            expected = scalar_hits(trace, 2, 2, policy=policy)
            assert np.array_equal(serving == 1, expected)


class TestTraceBuffer:
    def test_interleaves_all_three_channels(self):
        buffer = TraceBuffer(line_shift=6)
        buffer.touches.append(10)
        buffer.record_run(20, nlines=3, count=5)
        buffer.touches.append(11)
        buffer.record_many(
            np.array([0, 16]), base=0, itemsize=4, length=32,
            name="a",
        )
        buffer.touches.append(12)
        trace = buffer.freeze()
        assert trace.lines.tolist() == [10, 20, 21, 22, 11, 0, 1, 12]
        # Prefetched run fills (21, 22) are not demand accesses.
        assert trace.demand_idx.tolist() == [0, 1, 4, 5, 6, 7]
        assert trace.extra_l1 == 4  # 5 run elements, 1 demand line
        assert trace.prefetched_refs == 2
        assert trace.total_refs == 6 + 4  # touches+batch+run elements

    def test_deferred_bounds_error_names_the_array(self):
        buffer = TraceBuffer(line_shift=6)
        buffer.record_many(
            np.array([0, 99]), base=0, itemsize=8, length=10,
            name="ranks",
        )
        with pytest.raises(InvalidParameterError, match="'ranks'"):
            buffer.freeze()

    def test_empty_freeze(self):
        trace = TraceBuffer(line_shift=6).freeze()
        assert trace.num_accesses == 0
        assert trace.num_demand == 0


def lru_memories():
    """A (step, replay) pair over identical small LRU hierarchies."""
    return (
        Memory(make_hierarchy([(2, 2), (4, 4)]), cache_backend="step"),
        Memory(
            make_hierarchy([(2, 2), (4, 4)]), cache_backend="replay"
        ),
    )


def drive(memory):
    array = memory.array("a", 64, 8)
    other = memory.array("b", 32, 4)
    for i in (0, 8, 0, 63, 8):
        array.touch(i)
    array.touch_run(4, 40)
    other.touch_all(np.array([0, 31, 0, 15]))
    array.touch(0)


class TestMemoryBackends:
    def test_backend_equivalence_on_mixed_touches(self):
        step, replay = lru_memories()
        drive(step)
        drive(replay)
        assert replay.replaying is True
        assert replay.level_counts == step.level_counts
        assert replay.stats() == step.stats()
        assert replay.cost() == step.cost()
        assert replay.total_refs == step.total_refs
        assert replay.prefetched_refs == step.prefetched_refs

    def test_mid_run_reads_stay_exact(self):
        step, replay = lru_memories()
        a_step = step.array("a", 64, 8)
        a_replay = replay.array("a", 64, 8)
        for i in (0, 9, 18, 0):
            a_step.touch(i)
            a_replay.touch(i)
        assert replay.level_counts == step.level_counts  # mid-run
        for i in (27, 0, 9):
            a_step.touch(i)
            a_replay.touch(i)
        assert replay.level_counts == step.level_counts
        assert replay.stats() == step.stats()

    def test_invalid_backend_rejected(self):
        with pytest.raises(InvalidParameterError, match="cache_backend"):
            Memory(cache_backend="warp")

    def test_non_lru_hierarchy_falls_back_to_stepping(self):
        for policy in ("fifo", "random"):
            replay = Memory(
                make_hierarchy([(2, 2)], policy=policy),
                cache_backend="replay",
            )
            step = Memory(
                make_hierarchy([(2, 2)], policy=policy),
                cache_backend="step",
            )
            assert replay.replaying is False
            a_replay = replay.array("a", 64, 8)
            a_step = step.array("a", 64, 8)
            for i in (0, 8, 16, 0, 8):
                a_replay.touch(i)
                a_step.touch(i)
            assert replay.level_counts == step.level_counts

    def test_recording_wrapper_falls_back_but_still_records(self):
        inner = make_hierarchy([(2, 2)])
        wrapper = RecordingHierarchy(inner)
        memory = Memory(wrapper, cache_backend="replay")
        assert memory.replaying is False
        array = memory.array("a", 16, 8)
        array.touch(0)
        array.touch(8)
        assert wrapper.trace().shape[0] == 2

    def test_recorded_trace_requires_active_replay(self):
        memory = Memory(make_hierarchy([(2, 2)]), cache_backend="step")
        with pytest.raises(InvalidParameterError, match="replay"):
            memory.recorded_trace()

    def test_recorded_trace_freezes_current_touches(self):
        memory = Memory(
            make_hierarchy([(2, 2)]), cache_backend="replay"
        )
        array = memory.array("a", 64, 8)
        array.touch(0)
        array.touch_run(8, 16)
        trace = memory.recorded_trace()
        assert trace.num_accesses == trace.lines.shape[0] > 0
        assert trace.total_refs == memory.total_refs

    def test_touch_all_rejects_bad_indices_lazily(self):
        memory = Memory(
            make_hierarchy([(2, 2)]), cache_backend="replay"
        )
        array = memory.array("scores", 8, 8)
        array.touch_all(np.array([0, 12]))  # deferred: no error yet
        with pytest.raises(InvalidParameterError, match="'scores'"):
            memory.level_counts

    def test_touch_all_rejects_bad_dtype_and_shape(self):
        for backend in ("step", "replay"):
            memory = Memory(
                make_hierarchy([(2, 2)]), cache_backend=backend
            )
            array = memory.array("a", 8, 8)
            with pytest.raises(InvalidParameterError, match="integer"):
                array.touch_all(np.array([0.5, 1.0]))
            with pytest.raises(InvalidParameterError, match="1-D"):
                array.touch_all(np.array([[1], [2]]))

    def test_reset_discards_recorded_trace(self):
        step, replay = lru_memories()
        drive(step)
        drive(replay)
        step.reset()
        replay.reset()
        assert replay.level_counts == step.level_counts
        a_step = step.arrays["a"]
        a_replay = replay.arrays["a"]
        a_step.touch(0)
        a_replay.touch(0)
        assert replay.level_counts == step.level_counts


class TestAllAlgorithmsEquivalence:
    """Every traced algorithm: replay == step, counter for counter."""

    @pytest.mark.parametrize("name", sorted(algorithms.REGISTRY))
    def test_backend_equivalence(self, name, small_social):
        spec = algorithms.spec(name)
        results = {}
        for backend in ("step", "replay"):
            memory = Memory(
                make_hierarchy([(2, 2), (4, 4), (8, 8)]),
                cache_backend=backend,
            )
            spec.traced(small_social, memory)
            results[backend] = (
                memory.level_counts,
                memory.stats(),
                memory.cost(),
                memory.total_refs,
                memory.prefetched_refs,
            )
        assert results["replay"] == results["step"]
