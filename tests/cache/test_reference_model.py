"""Model-checking the cache simulator against a naive reference.

The reference implements set-associative LRU with explicit lists —
slow and obviously correct.  Hypothesis drives random traces through
both and requires identical hit/miss behaviour, per level, including
the multi-level fall-through.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.cache import CacheHierarchy, CacheLevel


class ReferenceLevel:
    """Obviously-correct set-associative LRU over Python lists."""

    def __init__(self, num_sets: int, ways: int) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.sets: list[list[int]] = [[] for _ in range(num_sets)]

    def access(self, line: int) -> bool:
        bucket = self.sets[line % self.num_sets]
        if line in bucket:
            bucket.remove(line)
            bucket.append(line)  # most recently used at the back
            return True
        if len(bucket) >= self.ways:
            bucket.pop(0)
        bucket.append(line)
        return False


class ReferenceHierarchy:
    def __init__(self, geometries: list[tuple[int, int]]) -> None:
        self.levels = [ReferenceLevel(s, w) for s, w in geometries]

    def access(self, line: int) -> int:
        for depth, level in enumerate(self.levels, start=1):
            if level.access(line):
                return depth
        return 0


def build_pair(geometries):
    """Matching (simulator, reference) hierarchies."""
    levels = [
        CacheLevel(sets * ways * 64, 64, ways, f"L{i + 1}")
        for i, (sets, ways) in enumerate(geometries)
    ]
    return CacheHierarchy(levels), ReferenceHierarchy(geometries)


line_traces = st.lists(st.integers(0, 40), min_size=1, max_size=500)


class TestAgainstReference:
    @given(line_traces)
    def test_single_level(self, trace):
        simulator, reference = build_pair([(2, 2)])
        for line in trace:
            assert simulator.access(line) == reference.access(line)

    @given(line_traces)
    def test_three_levels(self, trace):
        simulator, reference = build_pair([(1, 2), (2, 2), (2, 4)])
        for line in trace:
            assert simulator.access(line) == reference.access(line)

    @given(line_traces)
    def test_counter_consistency(self, trace):
        simulator, reference = build_pair([(2, 2), (2, 4)])
        served = [0, 0, 0]  # memory, L1, L2
        for line in trace:
            level = simulator.access(line)
            assert level == reference.access(line)
            served[level] += 1
        stats = simulator.snapshot()
        assert stats.l1_refs == len(trace)
        assert stats.l1_misses == len(trace) - served[1]
        assert stats.l3_misses == served[0]
