"""Unit tests for the memory layout model and traced arrays."""

import numpy as np
import pytest

from repro.cache import CacheHierarchy, CacheLevel, Memory
from repro.errors import InvalidParameterError


def small_memory():
    return Memory(
        CacheHierarchy(
            [
                CacheLevel(2 * 64, 64, 2, "L1"),
                CacheLevel(4 * 64, 64, 4, "L2"),
                CacheLevel(8 * 64, 64, 8, "L3"),
            ]
        )
    )


class TestArrayDeclaration:
    def test_line_aligned_bases(self):
        memory = small_memory()
        a = memory.array("a", 3, 4)  # 12 bytes -> padded to one line
        b = memory.array("b", 1, 8)
        assert a.line_of(0) != b.line_of(0)

    def test_elements_share_lines(self):
        memory = small_memory()
        a = memory.array("a", 32, 4)
        assert a.line_of(0) == a.line_of(15)
        assert a.line_of(15) != a.line_of(16)

    def test_duplicate_name_rejected(self):
        memory = small_memory()
        memory.array("a", 1, 4)
        with pytest.raises(InvalidParameterError, match="already"):
            memory.array("a", 1, 4)

    def test_bad_itemsize(self):
        memory = small_memory()
        with pytest.raises(InvalidParameterError, match="power of two"):
            memory.array("a", 1, 3)

    def test_negative_length(self):
        memory = small_memory()
        with pytest.raises(InvalidParameterError, match="length"):
            memory.array("a", -1, 4)

    def test_zero_length_array_still_occupies_a_line(self):
        memory = small_memory()
        a = memory.array("a", 0, 4)
        b = memory.array("b", 1, 4)
        assert a.line_of(0) != b.line_of(0)


class TestTouch:
    def test_touch_counts_levels(self):
        memory = small_memory()
        a = memory.array("a", 16, 4)
        a.touch(0)  # memory
        a.touch(0)  # L1
        assert memory.level_counts[0] == 1
        assert memory.level_counts[1] == 1
        assert memory.total_refs == 2

    def test_same_line_is_one_fetch(self):
        memory = small_memory()
        a = memory.array("a", 16, 4)
        a.touch(0)
        a.touch(15)  # same 64-byte line
        assert memory.level_counts[1] == 1

    def test_stats_snapshot(self):
        memory = small_memory()
        a = memory.array("a", 16, 4)
        a.touch(0)
        stats = memory.stats()
        assert stats.l1_refs == 1
        assert stats.l3_misses == 1


class TestTouchRun:
    def test_counts_every_element(self):
        memory = small_memory()
        a = memory.array("a", 64, 4)
        a.touch_run(0, 64)
        assert memory.total_refs == 64

    def test_prefetch_hides_trailing_lines(self):
        memory = small_memory()
        a = memory.array("a", 64, 4)  # 4 lines of 16 elements
        a.touch_run(0, 64)
        # One demand fetch (first line) + 3 prefetched lines.
        assert memory.level_counts[0] == 1
        assert memory.prefetched_refs == 3
        # Demand refs: 1 fetch + 63 L1 hits.
        assert memory.level_counts[1] == 63

    def test_partial_first_line(self):
        memory = small_memory()
        a = memory.array("a", 64, 4)
        a.touch_run(8, 16)  # spans line 0 (8 elems) and line 1 (8)
        assert memory.total_refs == 16
        assert memory.level_counts[0] == 1
        assert memory.prefetched_refs == 1

    def test_empty_run_is_noop(self):
        memory = small_memory()
        a = memory.array("a", 16, 4)
        a.touch_run(0, 0)
        assert memory.total_refs == 0

    def test_run_warms_cache(self):
        memory = small_memory()
        a = memory.array("a", 16, 4)
        a.touch_run(0, 16)
        a.touch(3)
        assert memory.level_counts[1] == 16  # 15 from run + this hit


class TestCostAccounting:
    def test_cost_includes_prefetched_in_execute(self):
        memory = small_memory()
        a = memory.array("a", 64, 4)
        a.touch_run(0, 64)
        cost = memory.cost()
        model = memory.cost_model
        assert cost.execute_cycles == 64 * model.execute_per_ref
        # Stall charged only for the single demand memory access.
        assert cost.stall_cycles == model.memory_stall

    def test_work_adds_execute_cycles(self):
        memory = small_memory()
        memory.work(123.0)
        assert memory.cost().execute_cycles == 123.0

    def test_reset(self):
        memory = small_memory()
        a = memory.array("a", 64, 4)
        a.touch_run(0, 64)
        memory.work(5)
        memory.reset()
        assert memory.total_refs == 0
        assert memory.prefetched_refs == 0
        assert memory.cost().total_cycles == 0
        # Arrays survive a reset.
        a.touch(0)
        assert memory.total_refs == 1


class TestBoundsAndGeometryGuards:
    """Regressions: oversized elements once sent ``touch_run`` into an
    infinite loop, and out-of-range touches silently aliased the
    neighbouring array's cache lines."""

    def test_itemsize_beyond_line_size_rejected(self):
        memory = small_memory()  # 64-byte lines
        with pytest.raises(InvalidParameterError, match="exceeds"):
            memory.array("wide", 4, 128)

    def test_itemsize_equal_to_line_size_allowed(self):
        memory = small_memory()
        array = memory.array("full-line", 4, 64)
        array.touch_run(0, 4)  # one demand line + three prefetched
        assert memory.total_refs == 4

    def test_touch_bounds_checked(self):
        memory = small_memory()
        array = memory.array("a", 8, 4)
        with pytest.raises(InvalidParameterError, match="outside"):
            array.touch(8)
        with pytest.raises(InvalidParameterError, match="outside"):
            array.touch(-1)
        array.touch(7)  # boundary element is fine

    def test_touch_run_bounds_checked(self):
        memory = small_memory()
        array = memory.array("a", 8, 4)
        with pytest.raises(InvalidParameterError, match="outside"):
            array.touch_run(4, 5)
        with pytest.raises(InvalidParameterError, match="outside"):
            array.touch_run(-1, 2)
        array.touch_run(4, 4)  # boundary run is fine


def small_replay_memory():
    return Memory(
        CacheHierarchy(
            [
                CacheLevel(2 * 64, 64, 2, "L1"),
                CacheLevel(4 * 64, 64, 4, "L2"),
                CacheLevel(8 * 64, 64, 8, "L3"),
            ]
        ),
        cache_backend="replay",
    )


class TestBatchTouchApis:
    """The frontier runtime's batch APIs: ``touch_many``,
    ``touch_runs``, ``element_lines`` and ``touch_block`` must stay
    counter-identical to their scalar spellings and keep the scalar
    APIs' bounds guarantees (out-of-range indices raise instead of
    silently aliasing the neighbouring array's lines)."""

    def test_touch_many_matches_scalar_touches(self):
        indices = [0, 7, 3, 3, 5, 1]
        scalar = small_memory()
        a = scalar.array("a", 8, 8)
        for i in indices:
            a.touch(i)
        batched = small_memory()
        b = batched.array("a", 8, 8)
        b.touch_many(np.asarray(indices))
        assert batched.level_counts == scalar.level_counts
        assert batched.total_refs == scalar.total_refs

    def test_touch_many_replay_matches_step(self):
        indices = np.asarray([0, 7, 3, 3, 5, 1])
        step = small_memory()
        step.array("a", 8, 8).touch_many(indices)
        replay = small_replay_memory()
        replay.array("a", 8, 8).touch_many(indices)
        assert replay.level_counts == step.level_counts
        assert replay.total_refs == step.total_refs

    def test_touch_many_bounds_checked(self):
        array = small_memory().array("a", 8, 4)
        with pytest.raises(InvalidParameterError, match="outside"):
            array.touch_many(np.asarray([0, 8]))
        with pytest.raises(InvalidParameterError, match="outside"):
            array.touch_many(np.asarray([-1, 0]))
        array.touch_many(np.asarray([0, 7]))  # boundary is fine

    def test_touch_many_deferred_bounds_raise_at_freeze(self):
        memory = small_replay_memory()
        array = memory.array("edges", 8, 4)
        array.touch_many(np.asarray([0, 8]))  # recorded by reference
        with pytest.raises(InvalidParameterError, match="'edges'"):
            memory.level_counts

    def test_touch_many_rejects_bad_shapes_and_dtypes(self):
        array = small_memory().array("a", 8, 4)
        with pytest.raises(InvalidParameterError, match="1-D"):
            array.touch_many(np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(InvalidParameterError, match="integer"):
            array.touch_many(np.asarray([0.5, 1.5]))

    def test_touch_many_empty_is_noop(self):
        memory = small_memory()
        memory.array("a", 8, 4).touch_many(
            np.zeros(0, dtype=np.int64)
        )
        assert memory.total_refs == 0

    def test_touch_runs_matches_scalar_runs(self):
        runs = [(0, 3), (16, 8), (4, 0), (8, 5)]
        scalar = small_memory()
        a = scalar.array("a", 32, 8)
        for start, count in runs:
            a.touch_run(start, count)
        batched = small_memory()
        b = batched.array("a", 32, 8)
        b.touch_runs(
            np.asarray([s for s, _ in runs]),
            np.asarray([c for _, c in runs]),
        )
        assert batched.level_counts == scalar.level_counts
        assert batched.total_refs == scalar.total_refs
        assert batched.prefetched_refs == scalar.prefetched_refs

    def test_touch_runs_replay_matches_step(self):
        starts = np.asarray([0, 16, 8])
        lengths = np.asarray([3, 8, 5])
        step = small_memory()
        step.array("a", 32, 8).touch_runs(starts, lengths)
        replay = small_replay_memory()
        replay.array("a", 32, 8).touch_runs(starts, lengths)
        assert replay.level_counts == step.level_counts
        assert replay.total_refs == step.total_refs
        assert replay.prefetched_refs == step.prefetched_refs

    def test_touch_runs_bounds_checked(self):
        array = small_memory().array("a", 8, 4)
        with pytest.raises(InvalidParameterError, match="outside"):
            array.touch_runs(np.asarray([4]), np.asarray([5]))
        with pytest.raises(InvalidParameterError, match="outside"):
            array.touch_runs(np.asarray([-1]), np.asarray([2]))
        array.touch_runs(np.asarray([4]), np.asarray([4]))  # boundary

    def test_touch_runs_rejects_misaligned_or_float_arrays(self):
        array = small_memory().array("a", 8, 4)
        with pytest.raises(InvalidParameterError, match="aligned"):
            array.touch_runs(np.asarray([0, 1]), np.asarray([1]))
        with pytest.raises(InvalidParameterError, match="integer"):
            array.touch_runs(np.asarray([0.0]), np.asarray([1.0]))

    def test_touch_runs_skips_zero_length_spans(self):
        memory = small_memory()
        # The zero-length span's start may even be out of range for a
        # non-empty run; it must simply be dropped.
        memory.array("a", 8, 4).touch_runs(
            np.asarray([0, 8]), np.asarray([2, 0])
        )
        assert memory.total_refs == 2

    def test_element_lines_matches_line_of(self):
        memory = small_memory()
        array = memory.array("a", 32, 8)
        indices = np.asarray([0, 31, 7, 8])
        assert array.element_lines(indices).tolist() == [
            array.line_of(int(i)) for i in indices
        ]

    def test_element_lines_bounds_checked(self):
        array = small_memory().array("a", 8, 4)
        with pytest.raises(InvalidParameterError, match="outside"):
            array.element_lines(np.asarray([8]))
        with pytest.raises(InvalidParameterError, match="outside"):
            array.element_lines(np.asarray([-1]))
        assert array.element_lines(np.zeros(0, dtype=np.int64)).size == 0

    def test_touch_block_replay_matches_step(self):
        lines_src = small_memory()
        array = lines_src.array("a", 64, 8)
        lines = array.element_lines(np.asarray([0, 8, 16, 24, 0, 8]))
        demand = np.asarray([True, True, False, False, True, True])
        step = small_memory()
        step.array("a", 64, 8)
        step.touch_block(lines, demand, extra_l1=3, prefetched=2)
        replay = small_replay_memory()
        replay.array("a", 64, 8)
        replay.touch_block(lines, demand, extra_l1=3, prefetched=2)
        assert replay.level_counts == step.level_counts
        assert replay.total_refs == step.total_refs
        assert replay.prefetched_refs == step.prefetched_refs

    def test_touch_block_rejects_misaligned_arrays(self):
        memory = small_memory()
        with pytest.raises(InvalidParameterError, match="aligned"):
            memory.touch_block(
                np.asarray([1, 2]), np.asarray([True])
            )
