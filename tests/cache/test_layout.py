"""Unit tests for the memory layout model and traced arrays."""

import pytest

from repro.cache import CacheHierarchy, CacheLevel, Memory
from repro.errors import InvalidParameterError


def small_memory():
    return Memory(
        CacheHierarchy(
            [
                CacheLevel(2 * 64, 64, 2, "L1"),
                CacheLevel(4 * 64, 64, 4, "L2"),
                CacheLevel(8 * 64, 64, 8, "L3"),
            ]
        )
    )


class TestArrayDeclaration:
    def test_line_aligned_bases(self):
        memory = small_memory()
        a = memory.array("a", 3, 4)  # 12 bytes -> padded to one line
        b = memory.array("b", 1, 8)
        assert a.line_of(0) != b.line_of(0)

    def test_elements_share_lines(self):
        memory = small_memory()
        a = memory.array("a", 32, 4)
        assert a.line_of(0) == a.line_of(15)
        assert a.line_of(15) != a.line_of(16)

    def test_duplicate_name_rejected(self):
        memory = small_memory()
        memory.array("a", 1, 4)
        with pytest.raises(InvalidParameterError, match="already"):
            memory.array("a", 1, 4)

    def test_bad_itemsize(self):
        memory = small_memory()
        with pytest.raises(InvalidParameterError, match="power of two"):
            memory.array("a", 1, 3)

    def test_negative_length(self):
        memory = small_memory()
        with pytest.raises(InvalidParameterError, match="length"):
            memory.array("a", -1, 4)

    def test_zero_length_array_still_occupies_a_line(self):
        memory = small_memory()
        a = memory.array("a", 0, 4)
        b = memory.array("b", 1, 4)
        assert a.line_of(0) != b.line_of(0)


class TestTouch:
    def test_touch_counts_levels(self):
        memory = small_memory()
        a = memory.array("a", 16, 4)
        a.touch(0)  # memory
        a.touch(0)  # L1
        assert memory.level_counts[0] == 1
        assert memory.level_counts[1] == 1
        assert memory.total_refs == 2

    def test_same_line_is_one_fetch(self):
        memory = small_memory()
        a = memory.array("a", 16, 4)
        a.touch(0)
        a.touch(15)  # same 64-byte line
        assert memory.level_counts[1] == 1

    def test_stats_snapshot(self):
        memory = small_memory()
        a = memory.array("a", 16, 4)
        a.touch(0)
        stats = memory.stats()
        assert stats.l1_refs == 1
        assert stats.l3_misses == 1


class TestTouchRun:
    def test_counts_every_element(self):
        memory = small_memory()
        a = memory.array("a", 64, 4)
        a.touch_run(0, 64)
        assert memory.total_refs == 64

    def test_prefetch_hides_trailing_lines(self):
        memory = small_memory()
        a = memory.array("a", 64, 4)  # 4 lines of 16 elements
        a.touch_run(0, 64)
        # One demand fetch (first line) + 3 prefetched lines.
        assert memory.level_counts[0] == 1
        assert memory.prefetched_refs == 3
        # Demand refs: 1 fetch + 63 L1 hits.
        assert memory.level_counts[1] == 63

    def test_partial_first_line(self):
        memory = small_memory()
        a = memory.array("a", 64, 4)
        a.touch_run(8, 16)  # spans line 0 (8 elems) and line 1 (8)
        assert memory.total_refs == 16
        assert memory.level_counts[0] == 1
        assert memory.prefetched_refs == 1

    def test_empty_run_is_noop(self):
        memory = small_memory()
        a = memory.array("a", 16, 4)
        a.touch_run(0, 0)
        assert memory.total_refs == 0

    def test_run_warms_cache(self):
        memory = small_memory()
        a = memory.array("a", 16, 4)
        a.touch_run(0, 16)
        a.touch(3)
        assert memory.level_counts[1] == 16  # 15 from run + this hit


class TestCostAccounting:
    def test_cost_includes_prefetched_in_execute(self):
        memory = small_memory()
        a = memory.array("a", 64, 4)
        a.touch_run(0, 64)
        cost = memory.cost()
        model = memory.cost_model
        assert cost.execute_cycles == 64 * model.execute_per_ref
        # Stall charged only for the single demand memory access.
        assert cost.stall_cycles == model.memory_stall

    def test_work_adds_execute_cycles(self):
        memory = small_memory()
        memory.work(123.0)
        assert memory.cost().execute_cycles == 123.0

    def test_reset(self):
        memory = small_memory()
        a = memory.array("a", 64, 4)
        a.touch_run(0, 64)
        memory.work(5)
        memory.reset()
        assert memory.total_refs == 0
        assert memory.prefetched_refs == 0
        assert memory.cost().total_cycles == 0
        # Arrays survive a reset.
        a.touch(0)
        assert memory.total_refs == 1


class TestBoundsAndGeometryGuards:
    """Regressions: oversized elements once sent ``touch_run`` into an
    infinite loop, and out-of-range touches silently aliased the
    neighbouring array's cache lines."""

    def test_itemsize_beyond_line_size_rejected(self):
        memory = small_memory()  # 64-byte lines
        with pytest.raises(InvalidParameterError, match="exceeds"):
            memory.array("wide", 4, 128)

    def test_itemsize_equal_to_line_size_allowed(self):
        memory = small_memory()
        array = memory.array("full-line", 4, 64)
        array.touch_run(0, 4)  # one demand line + three prefetched
        assert memory.total_refs == 4

    def test_touch_bounds_checked(self):
        memory = small_memory()
        array = memory.array("a", 8, 4)
        with pytest.raises(InvalidParameterError, match="outside"):
            array.touch(8)
        with pytest.raises(InvalidParameterError, match="outside"):
            array.touch(-1)
        array.touch(7)  # boundary element is fine

    def test_touch_run_bounds_checked(self):
        memory = small_memory()
        array = memory.array("a", 8, 4)
        with pytest.raises(InvalidParameterError, match="outside"):
            array.touch_run(4, 5)
        with pytest.raises(InvalidParameterError, match="outside"):
            array.touch_run(-1, 2)
        array.touch_run(4, 4)  # boundary run is fine
