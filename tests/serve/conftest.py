"""Fixtures for the serve test suite: a real daemon on a loopback port.

The server fixture starts an in-process :class:`OrderingService` +
``ThreadingHTTPServer`` on an ephemeral port, so the tests exercise
the genuine HTTP transport (status codes, Retry-After headers,
concurrent handler threads) without subprocess overhead.  The
SIGTERM/exit-code contract is covered separately by a subprocess test
in ``test_server.py``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.serve import OrderingService, ServeConfig
from repro.serve.server import _make_server


@pytest.fixture(autouse=True)
def clean_telemetry():
    obs.reset()
    yield
    obs.reset()


class ServeHarness:
    """One running daemon plus a tiny JSON client."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.service = OrderingService(config)
        self.httpd = _make_server(config, self.service)
        self.port = self.httpd.server_address[1]
        self.base = f"http://127.0.0.1:{self.port}"
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.02},
            daemon=True,
        )
        self._thread.start()

    def request(
        self,
        path: str,
        body: dict | None = None,
        timeout: float = 30.0,
    ) -> tuple[int, dict, dict]:
        """(status, json payload, headers); POST when body given."""
        if body is None:
            request = urllib.request.Request(self.base + path)
        else:
            request = urllib.request.Request(
                self.base + path,
                data=json.dumps(body).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout
            ) as response:
                return (
                    response.status,
                    json.loads(response.read()),
                    dict(response.headers),
                )
        except urllib.error.HTTPError as error:
            return (
                error.code,
                json.loads(error.read()),
                dict(error.headers),
            )

    def get(self, path: str) -> tuple[int, dict, dict]:
        return self.request(path)

    def post(
        self, path: str, body: dict, timeout: float = 30.0
    ) -> tuple[int, dict, dict]:
        return self.request(path, body, timeout)

    def close(self) -> None:
        self.httpd.shutdown()
        self._thread.join(timeout=2.0)
        self.httpd.server_close()


@pytest.fixture
def harness_factory():
    """Build daemons with per-test configs; all closed on teardown."""
    built: list[ServeHarness] = []

    def build(**overrides) -> ServeHarness:
        overrides.setdefault("workers", 2)
        overrides.setdefault("queue_capacity", 4)
        harness = ServeHarness(ServeConfig(**overrides))
        built.append(harness)
        return harness

    yield build
    for harness in built:
        harness.service.drain()
        harness.close()


@pytest.fixture
def harness(harness_factory):
    """A default daemon for simple endpoint tests."""
    return harness_factory()
