"""Request validation and error shaping of the wire protocol."""

from __future__ import annotations

import pytest

from repro.serve.protocol import (
    BadRequestError,
    DeadlineExceededError,
    DrainingError,
    OrderRequest,
    QueueFullError,
    RunRequest,
    ServeError,
    error_payload,
)


class TestOrderRequest:
    def test_minimal(self):
        request = OrderRequest.from_payload({"dataset": "epinion"})
        assert request.dataset == "epinion"
        assert request.ordering == "gorder"
        assert request.seed == 0
        assert request.deadline_seconds is None
        assert not request.include_permutation

    def test_full(self):
        request = OrderRequest.from_payload(
            {
                "dataset": "pokec",
                "ordering": "rcm",
                "seed": 3,
                "ordering_params": {"backend": "batched"},
                "include_permutation": True,
                "deadline_seconds": 2.5,
            }
        )
        assert request.ordering == "rcm"
        assert request.seed == 3
        assert request.ordering_params == {"backend": "batched"}
        assert request.include_permutation
        assert request.deadline_seconds == 2.5

    def test_auto_is_a_valid_ordering(self):
        """The adaptive selector is addressable over the wire; its
        knobs travel as ordering_params and reach the store key."""
        request = OrderRequest.from_payload(
            {
                "dataset": "epinion",
                "ordering": "auto",
                "ordering_params": {"query_volume": 5000},
            }
        )
        assert request.ordering == "auto"
        assert request.ordering_params == {"query_volume": 5000}

    @pytest.mark.parametrize(
        "payload",
        [
            [],
            "dataset=epinion",
            {},
            {"dataset": 7},
            {"dataset": "epinion", "ordering": "nope"},
            {"dataset": "epinion", "seed": "zero"},
            {"dataset": "epinion", "seed": True},
            {"dataset": "epinion", "deadline_seconds": 0},
            {"dataset": "epinion", "deadline_seconds": -1},
            {"dataset": "epinion", "deadline_seconds": "fast"},
            {"dataset": "epinion", "ordering_params": [1]},
            {"dataset": "epinion", "include_permutation": "yes"},
        ],
    )
    def test_rejects(self, payload):
        with pytest.raises(BadRequestError):
            OrderRequest.from_payload(payload)


class TestRunRequest:
    def test_minimal(self):
        request = RunRequest.from_payload(
            {"dataset": "epinion", "algorithm": "pr"}
        )
        assert request.algorithm == "pr"
        assert request.cache_backend == "replay"
        assert request.seed is None
        assert request.profile == "quick"

    def test_algorithm_required(self):
        with pytest.raises(BadRequestError):
            RunRequest.from_payload({"dataset": "epinion"})

    def test_bad_cache_backend(self):
        with pytest.raises(BadRequestError):
            RunRequest.from_payload(
                {
                    "dataset": "epinion",
                    "algorithm": "pr",
                    "cache_backend": "magic",
                }
            )

    def test_algo_backend_defaults_to_runtime(self):
        request = RunRequest.from_payload(
            {"dataset": "epinion", "algorithm": "pr"}
        )
        assert request.algo_backend == "runtime"

    def test_scalar_algo_backend_accepted(self):
        request = RunRequest.from_payload(
            {
                "dataset": "epinion",
                "algorithm": "pr",
                "algo_backend": "scalar",
            }
        )
        assert request.algo_backend == "scalar"

    def test_bad_algo_backend(self):
        with pytest.raises(BadRequestError):
            RunRequest.from_payload(
                {
                    "dataset": "epinion",
                    "algorithm": "pr",
                    "algo_backend": "vector",
                }
            )


class TestErrorShaping:
    def test_status_codes(self):
        assert BadRequestError("x").status == 400
        assert QueueFullError("x").status == 429
        assert DrainingError("x").status == 503
        assert DeadlineExceededError("x").status == 504
        assert ServeError("x").status == 500

    def test_queue_full_payload_carries_retry_after(self):
        payload = error_payload(
            QueueFullError("full", retry_after=2.0), "r9"
        )
        assert payload["error"] == "queue_full"
        assert payload["retry_after"] == 2.0
        assert payload["request_id"] == "r9"

    def test_deadline_payload_carries_phase(self):
        payload = error_payload(
            DeadlineExceededError("late", phase="ordered")
        )
        assert payload["error"] == "deadline_exceeded"
        assert payload["phase"] == "ordered"
