"""Admission queue, deadlines, retries and single-flight semantics."""

from __future__ import annotations

import threading
import time

import pytest

from repro.perf.faults import InjectedFault
from repro.serve.admission import (
    AdmissionQueue,
    Deadline,
    RequestContext,
    ServiceCounters,
    SingleFlight,
)
from repro.serve.protocol import (
    DeadlineExceededError,
    DrainingError,
    QueueFullError,
    RequestCancelledError,
)


def make_ctx(
    seconds: float | None = None, request_id: str = "r1"
) -> RequestContext:
    return RequestContext(request_id, Deadline(seconds))


class TestDeadline:
    def test_no_deadline_never_expires(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        assert not deadline.expired()

    def test_expiry(self):
        deadline = Deadline(0.01)
        assert not deadline.expired()
        time.sleep(0.02)
        assert deadline.expired()
        assert deadline.remaining() < 0


class TestRequestContext:
    def test_checkpoint_records_phase(self):
        ctx = make_ctx(None)
        ctx.checkpoint("graph_loaded")
        assert ctx.phase == "graph_loaded"

    def test_checkpoint_raises_past_deadline(self):
        ctx = make_ctx(0.01)
        time.sleep(0.02)
        with pytest.raises(DeadlineExceededError) as excinfo:
            ctx.checkpoint("ordered")
        # The phase is recorded first: partial-progress telemetry
        # reports how far the request got, including the phase that
        # completed just as the deadline fired.
        assert excinfo.value.phase == "ordered"

    def test_cancel_raises(self):
        ctx = make_ctx(None)
        ctx.cancel()
        with pytest.raises(RequestCancelledError):
            ctx.check()


class TestAdmissionQueue:
    def test_executes_and_returns(self):
        queue = AdmissionQueue(capacity=2, workers=1)
        try:
            future = queue.submit(
                make_ctx(), lambda ctx, attempt: 42
            )
            assert future.result(timeout=5) == 42
        finally:
            queue.drain(timeout=0.5)

    def test_queue_full_rejected_with_429_error(self):
        release = threading.Event()
        queue = AdmissionQueue(capacity=1, workers=1)
        try:
            def blocker(ctx, attempt):
                release.wait(timeout=5)
                return "done"

            running = queue.submit(make_ctx(None, "r1"), blocker)
            # Wait until the blocker occupies the worker, leaving
            # the queue itself empty.
            deadline = time.monotonic() + 5
            while queue.stats()["inflight"] != 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            queued = queue.submit(
                make_ctx(None, "r2"), lambda ctx, attempt: "queued"
            )
            with pytest.raises(QueueFullError) as excinfo:
                queue.submit(
                    make_ctx(None, "r3"), lambda ctx, attempt: None
                )
            assert excinfo.value.retry_after > 0
            assert (
                queue.counters.snapshot()["serve.rejected_queue_full"]
                == 1
            )
            release.set()
            assert running.result(timeout=5) == "done"
            assert queued.result(timeout=5) == "queued"
        finally:
            release.set()
            queue.drain(timeout=0.5)

    def test_doomed_job_not_started(self):
        queue = AdmissionQueue(capacity=2, workers=1)
        try:
            ctx = make_ctx(0.01)
            time.sleep(0.02)
            ran = []
            future = queue.submit(
                ctx, lambda c, attempt: ran.append(attempt)
            )
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=5)
            assert ran == []
        finally:
            queue.drain(timeout=0.5)

    def test_retry_after_transient_failure(self):
        counters = ServiceCounters()
        queue = AdmissionQueue(
            capacity=2,
            workers=1,
            retries=2,
            backoff_seconds=0.001,
            counters=counters,
        )
        try:
            attempts = []

            def flaky(ctx, attempt):
                attempts.append(attempt)
                if attempt < 2:
                    raise InjectedFault("transient")
                return "recovered"

            future = queue.submit(make_ctx(), flaky)
            assert future.result(timeout=5) == "recovered"
            assert attempts == [0, 1, 2]
            assert counters.snapshot()["serve.retries"] == 2
        finally:
            queue.drain(timeout=0.5)

    def test_retries_exhausted_raise_last_error(self):
        queue = AdmissionQueue(
            capacity=2, workers=1, retries=1, backoff_seconds=0.001
        )
        try:
            def broken(ctx, attempt):
                raise InjectedFault(f"attempt {attempt}")

            future = queue.submit(make_ctx(), broken)
            with pytest.raises(InjectedFault, match="attempt 1"):
                future.result(timeout=5)
        finally:
            queue.drain(timeout=0.5)

    def test_deadline_not_retried(self):
        queue = AdmissionQueue(
            capacity=2, workers=1, retries=3, backoff_seconds=0.001
        )
        try:
            attempts = []

            def late(ctx, attempt):
                attempts.append(attempt)
                raise DeadlineExceededError("late", phase="ordered")

            future = queue.submit(make_ctx(), late)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=5)
            assert attempts == [0]
        finally:
            queue.drain(timeout=0.5)

    def test_drain_rejects_queued_and_cancels_inflight(self):
        release = threading.Event()
        counters = ServiceCounters()
        queue = AdmissionQueue(
            capacity=4, workers=1, counters=counters
        )

        def blocker(ctx, attempt):
            while True:
                ctx.check()
                if release.wait(timeout=0.01):
                    return "finished"

        inflight = queue.submit(make_ctx(None, "r1"), blocker)
        deadline = time.monotonic() + 5
        while queue.stats()["inflight"] != 1:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        queued = queue.submit(
            make_ctx(None, "r2"), lambda ctx, attempt: "never"
        )
        outcome = queue.drain(timeout=0.2)
        assert outcome["rejected_queued"] == 1
        assert outcome["cancelled_inflight"] == 1
        with pytest.raises(DrainingError):
            queued.result(timeout=1)
        with pytest.raises(RequestCancelledError):
            inflight.result(timeout=5)
        with pytest.raises(DrainingError):
            queue.submit(make_ctx(None, "r3"), lambda c, a: None)
        snapshot = counters.snapshot()
        assert snapshot["serve.rejected_draining"] >= 1
        assert snapshot["serve.cancelled"] == 1

    def test_drain_lets_fast_work_finish(self):
        queue = AdmissionQueue(capacity=2, workers=1)
        future = queue.submit(
            make_ctx(), lambda ctx, attempt: "done"
        )
        assert future.result(timeout=5) == "done"
        outcome = queue.drain(timeout=1.0)
        assert outcome["cancelled_inflight"] == 0
        assert outcome["unfinished"] == 0


class TestSingleFlight:
    def test_shares_one_computation(self):
        flights = SingleFlight()
        calls = []
        gate = threading.Event()
        results = []

        def compute():
            calls.append(1)
            gate.wait(timeout=5)
            return "value"

        def runner():
            results.append(
                flights.do("key", compute, make_ctx(None))
            )

        threads = [
            threading.Thread(target=runner) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.05)  # let followers pile onto the flight
        gate.set()
        for thread in threads:
            thread.join(timeout=5)
        assert len(calls) == 1
        assert results == ["value"] * 4
        snapshot = flights.counters.snapshot()
        assert snapshot["serve.singleflight_shared"] == 3

    def test_sequential_calls_compute_each_time(self):
        flights = SingleFlight()
        calls = []
        flights.do("key", lambda: calls.append(1))
        flights.do("key", lambda: calls.append(1))
        assert len(calls) == 2

    def test_leader_failure_propagates_to_followers(self):
        flights = SingleFlight()
        gate = threading.Event()
        errors = []

        def compute():
            gate.wait(timeout=5)
            raise InjectedFault("leader failed")

        def leader():
            try:
                flights.do("key", compute)
            except InjectedFault as exc:
                errors.append(("leader", str(exc)))

        def follower():
            try:
                flights.do("key", compute, make_ctx(None))
            except InjectedFault as exc:
                errors.append(("follower", str(exc)))

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        time.sleep(0.05)
        follower_thread = threading.Thread(target=follower)
        follower_thread.start()
        time.sleep(0.05)
        gate.set()
        leader_thread.join(timeout=5)
        follower_thread.join(timeout=5)
        assert sorted(role for role, _ in errors) == [
            "follower", "leader",
        ]

    def test_follower_bounded_by_deadline(self):
        flights = SingleFlight()
        gate = threading.Event()

        def slow():
            gate.wait(timeout=5)
            return "late"

        leader = threading.Thread(
            target=lambda: flights.do("key", slow)
        )
        leader.start()
        time.sleep(0.02)
        with pytest.raises(DeadlineExceededError):
            flights.do("key", slow, make_ctx(0.05))
        gate.set()
        leader.join(timeout=5)
