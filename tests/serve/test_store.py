"""OrderingStore: shards, spill, warm rebuild, quarantine, crash."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve.admission import Deadline, RequestContext
from repro.serve.store import (
    QUARANTINE_SUFFIX,
    OrderingStore,
    StoreEntry,
)


def perm_of(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64)[::-1].copy()


class TestMemoryPath:
    def test_compute_then_memory_hit(self, tmp_path):
        store = OrderingStore(root=tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return perm_of(8)

        first = store.get_or_compute(
            "epinion", "gorder", 0, None, compute
        )
        second = store.get_or_compute(
            "epinion", "gorder", 0, None, compute
        )
        assert len(calls) == 1
        assert first.source == "computed"
        assert second.source == "memory"
        np.testing.assert_array_equal(first.perm, second.perm)

    def test_params_are_part_of_the_key(self, tmp_path):
        store = OrderingStore(root=tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return perm_of(4)

        store.get_or_compute(
            "epinion", "gorder", 0, {"window": 3}, compute
        )
        store.get_or_compute(
            "epinion", "gorder", 0, {"window": 5}, compute
        )
        assert len(calls) == 2

    def test_memory_only_store(self):
        store = OrderingStore(root=None)
        entry = store.get_or_compute(
            "epinion", "gorder", 0, None, lambda: perm_of(4)
        )
        assert entry.source == "computed"
        assert store.stats()["spill_root"] is None

    def test_eviction_bounded_per_shard(self, tmp_path):
        store = OrderingStore(
            root=None, shards=1, max_entries_per_shard=2
        )
        for seed in range(5):
            store.get_or_compute(
                "epinion", "gorder", seed, None,
                lambda: perm_of(4),
            )
        assert store.stats()["entries"] == 2

    def test_concurrent_same_key_computes_once(self, tmp_path):
        store = OrderingStore(root=tmp_path)
        gate = threading.Event()
        calls = []
        results = []

        def compute():
            calls.append(1)
            gate.wait(timeout=5)
            return perm_of(16)

        def fetch():
            ctx = RequestContext("r", Deadline(None))
            results.append(
                store.get_or_compute(
                    "epinion", "gorder", 0, None, compute, ctx=ctx
                )
            )

        threads = [
            threading.Thread(target=fetch) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.05)
        gate.set()
        for thread in threads:
            thread.join(timeout=5)
        assert len(calls) == 1
        assert len(results) == 4


class TestSpillAndWarm:
    def test_spill_written_atomically(self, tmp_path):
        store = OrderingStore(root=tmp_path)
        store.get_or_compute(
            "epinion", "gorder", 0, {"window": 3},
            lambda: perm_of(8),
        )
        path = store.spill_path("epinion", "gorder", 0, {"window": 3})
        assert path.exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_restart_loads_from_disk(self, tmp_path):
        first = OrderingStore(root=tmp_path)
        original = first.get_or_compute(
            "epinion", "gorder", 7, None, lambda: perm_of(8)
        )
        fresh = OrderingStore(root=tmp_path)
        reloaded = fresh.get_or_compute(
            "epinion", "gorder", 7, None,
            lambda: pytest.fail("must not recompute"),
        )
        assert reloaded.source == "disk"
        np.testing.assert_array_equal(reloaded.perm, original.perm)

    def test_warm_rebuilds_memory_set(self, tmp_path):
        first = OrderingStore(root=tmp_path)
        for seed in (0, 1, 2):
            first.get_or_compute(
                "epinion", "gorder", seed, {"window": 4},
                lambda: perm_of(6),
            )
        fresh = OrderingStore(root=tmp_path)
        assert fresh.warm() == 3
        assert fresh.stats()["entries"] == 3
        entry = fresh.get_or_compute(
            "epinion", "gorder", 1, {"window": 4},
            lambda: pytest.fail("must not recompute"),
        )
        assert entry.source == "memory"

    def test_evicted_entry_reloads_from_disk(self, tmp_path):
        store = OrderingStore(
            root=tmp_path, shards=1, max_entries_per_shard=1
        )
        store.get_or_compute(
            "epinion", "gorder", 0, None, lambda: perm_of(4)
        )
        store.get_or_compute(
            "epinion", "gorder", 1, None, lambda: perm_of(4)
        )
        # Seed 0 was evicted from memory but kept on disk.
        entry = store.get_or_compute(
            "epinion", "gorder", 0, None,
            lambda: pytest.fail("must not recompute"),
        )
        assert entry.source == "disk"


class TestCrashSafety:
    def test_kill_mid_spill_leaves_store_loadable(self, tmp_path):
        """The acceptance scenario: kill -9 mid-spill, then restart.

        A kill mid-``atomic_open`` leaves a stray ``*.tmp``; a torn
        write that somehow hit the final name (pre-directory-fsync
        power loss) leaves a corrupt ``.npz``.  Restart must load
        everything valid, quarantine the corrupt file with a warning
        and remove the stray temp — never crash.
        """
        store = OrderingStore(root=tmp_path)
        store.get_or_compute(
            "epinion", "gorder", 0, None, lambda: perm_of(8)
        )
        good = store.spill_path("epinion", "gorder", 0, None)
        torn = store.spill_path("epinion", "gorder", 1, None)
        torn.write_bytes(good.read_bytes()[:17])  # truncated npz
        (tmp_path / "half-written.npz.tmp").write_bytes(b"\x00\x01")

        fresh = OrderingStore(root=tmp_path)
        assert fresh.warm() == 1
        snapshot = fresh.counters.snapshot()
        assert snapshot["serve.store_quarantined"] == 1
        assert snapshot["serve.store_stray_tmp"] == 1
        assert not torn.exists()
        quarantined = torn.with_name(torn.name + QUARANTINE_SUFFIX)
        assert quarantined.exists()
        assert not list(tmp_path.glob("*.tmp"))
        # The good entry is served from the warm set.
        entry = fresh.get_or_compute(
            "epinion", "gorder", 0, None,
            lambda: pytest.fail("must not recompute"),
        )
        assert entry.source == "memory"

    def test_corrupt_spill_on_lookup_recomputes(self, tmp_path):
        store = OrderingStore(root=tmp_path)
        store.get_or_compute(
            "epinion", "gorder", 0, None, lambda: perm_of(8)
        )
        path = store.spill_path("epinion", "gorder", 0, None)
        path.write_bytes(b"not an npz at all")
        fresh = OrderingStore(root=tmp_path)
        # warm() quarantines it; the next lookup recomputes cleanly.
        fresh.warm()
        entry = fresh.get_or_compute(
            "epinion", "gorder", 0, None, lambda: perm_of(8)
        )
        assert entry.source == "computed"
        assert (
            fresh.counters.snapshot()["serve.store_quarantined"] == 1
        )

    def test_wrong_schema_quarantined(self, tmp_path):
        store = OrderingStore(root=tmp_path)
        path = tmp_path / "epinion--gorder--s0--deadbeef00.npz"
        np.savez_compressed(path, wrong_field=np.arange(4))
        assert store.warm() == 0
        assert (
            store.counters.snapshot()["serve.store_quarantined"] == 1
        )

    def test_quarantine_emits_warning_event(self, tmp_path):
        from repro import obs

        obs.configure(capture=True)
        try:
            store = OrderingStore(root=tmp_path)
            (tmp_path / "bad.npz").write_bytes(b"junk")
            store.warm()
            events = [
                record
                for record in obs.captured()
                if record["name"] == "serve.store_quarantine"
            ]
            assert len(events) == 1
            assert "bad.npz" in events[0]["attrs"]["path"]
        finally:
            obs.reset()


class TestStoreEntry:
    def test_nbytes(self):
        entry = StoreEntry(np.arange(10, dtype=np.int64), 0.1)
        assert entry.nbytes == 80
