"""End-to-end daemon tests over real HTTP (and a SIGTERM subprocess).

Each robustness scenario from the issue gets its own test with its
distinct telemetry assertion: deadline-exceeded (504 + phase),
queue-full (429 + Retry-After), cancellation, retry-after-transient,
and graceful drain (503 + closed ``serve.drain`` span + exit 0).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import obs
from repro.perf.faults import FaultPlan, FaultSpec

REPO_ROOT = Path(__file__).resolve().parents[2]


def wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            pytest.fail("condition not reached in time")
        time.sleep(0.01)


def hang_plan(algorithm: str = "order") -> FaultPlan:
    return FaultPlan(
        (
            FaultSpec(
                dataset="epinion",
                algorithm=algorithm,
                ordering="gorder",
                kind="hang",
            ),
        )
    )


class TestEndpoints:
    def test_health(self, harness):
        status, payload, _ = harness.get("/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["protocol"] == 1
        assert payload["queue_depth"] == 0

    def test_order_computes_then_hits_memory(self, harness):
        status, first, _ = harness.post(
            "/order", {"dataset": "epinion"}
        )
        assert status == 200
        assert first["source"] == "computed"
        assert first["nodes"] > 0
        assert first["ordering_seconds"] >= 0
        status, second, _ = harness.post(
            "/order", {"dataset": "epinion"}
        )
        assert status == 200
        assert second["source"] == "memory"

    def test_order_returns_permutation_on_request(self, harness):
        status, payload, _ = harness.post(
            "/order",
            {"dataset": "epinion", "include_permutation": True},
        )
        assert status == 200
        perm = payload["permutation"]
        assert sorted(perm) == list(range(payload["nodes"]))

    def test_run_reuses_stored_ordering(self, harness):
        status, ordered, _ = harness.post(
            "/order", {"dataset": "epinion"}
        )
        assert status == 200
        status, payload, _ = harness.post(
            "/run",
            {"dataset": "epinion", "algorithm": "pr", "seed": 0},
        )
        assert status == 200
        assert payload["cycles"] > 0
        assert payload["seed"] == 0
        assert payload["cache_backend"] == "replay"
        _, stats, _ = harness.get("/stats")
        # The run request found the ordering the order request
        # computed — via memory or disk, never a second compute.
        assert stats["counters"]["serve.store_computed"] == 1

    def test_run_reports_and_honours_algo_backend(self, harness):
        status, runtime, _ = harness.post(
            "/run", {"dataset": "epinion", "algorithm": "pr"}
        )
        assert status == 200
        assert runtime["algo_backend"] == "runtime"
        status, scalar, _ = harness.post(
            "/run",
            {
                "dataset": "epinion",
                "algorithm": "pr",
                "algo_backend": "scalar",
            },
        )
        assert status == 200
        assert scalar["algo_backend"] == "scalar"
        # The scalar oracle is counter-identical to the runtime.
        assert scalar["cycles"] == runtime["cycles"]

    def test_unknown_dataset_rejected_before_admission(
        self, harness
    ):
        status, payload, _ = harness.post(
            "/order", {"dataset": "atlantis"}
        )
        assert status == 400
        assert payload["error"] == "bad_request"
        _, stats, _ = harness.get("/stats")
        assert "serve.admitted" not in stats["counters"]

    def test_invalid_json_is_400(self, harness):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            harness.base + "/order",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_endpoint_is_404(self, harness):
        status, payload, _ = harness.get("/nope")
        assert status == 404
        assert payload["error"] == "not_found"
        status, _, _ = harness.post("/nope", {})
        assert status == 404

    def test_stats_reports_counters_and_store(self, harness):
        harness.post("/order", {"dataset": "epinion"})
        status, stats, _ = harness.get("/stats")
        assert status == 200
        assert stats["queue"]["capacity"] == 4
        assert stats["store"]["entries"] == 1
        assert stats["graphs"] == ["epinion"]
        assert stats["counters"]["serve.requests"] == 1


class TestDeadlines:
    def test_hang_is_cut_off_at_deadline_with_phase(
        self, harness_factory
    ):
        harness = harness_factory(plan=hang_plan())
        started = time.monotonic()
        status, payload, _ = harness.post(
            "/order",
            {"dataset": "epinion", "deadline_seconds": 0.3},
        )
        elapsed = time.monotonic() - started
        assert status == 504
        assert payload["error"] == "deadline_exceeded"
        # Partial-progress telemetry: the hang fires before the graph
        # loads, so the request died still queued.
        assert payload["phase"] == "queued"
        assert payload["elapsed_seconds"] >= 0.3
        assert elapsed < 5, "hang must not be waited out"
        _, stats, _ = harness.get("/stats")
        assert stats["counters"]["serve.deadline_exceeded"] >= 1

    def test_hang_targets_only_named_algorithm(
        self, harness_factory
    ):
        # Fault plans address exact cells: a hang on the run path
        # leaves /order requests untouched.
        harness = harness_factory(plan=hang_plan(algorithm="pr"))
        status, payload, _ = harness.post(
            "/order", {"dataset": "epinion"}
        )
        assert status == 200
        assert payload["source"] == "computed"

    def test_worker_recovers_for_next_request(self, harness_factory):
        harness = harness_factory(plan=hang_plan(), workers=1)
        status, _, _ = harness.post(
            "/order",
            {"dataset": "epinion", "deadline_seconds": 0.3},
        )
        assert status == 504
        # The cancelled worker is back; a clean request succeeds.
        status, payload, _ = harness.post(
            "/order", {"dataset": "epinion", "ordering": "rcm"}
        )
        assert status == 200
        assert payload["source"] == "computed"


class TestClientDisconnect:
    def test_hangup_cancels_the_inflight_request(
        self, harness_factory
    ):
        import socket

        harness = harness_factory(plan=hang_plan(), workers=1)
        body = json.dumps(
            {"dataset": "epinion", "deadline_seconds": 30}
        ).encode()
        raw = socket.create_connection(
            ("127.0.0.1", harness.port), timeout=5
        )
        raw.sendall(
            b"POST /order HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
        )
        wait_until(
            lambda: harness.service.queue.stats()["inflight"] == 1
        )
        raw.close()  # hang up without reading the response
        wait_until(
            lambda: harness.service.counters.snapshot().get(
                "serve.client_disconnects", 0
            )
            >= 1
        )
        # The worker abandons the request instead of hanging for
        # the full 30s deadline nobody is waiting on.
        wait_until(
            lambda: harness.service.queue.stats()["inflight"] == 0
        )
        assert (
            harness.service.counters.snapshot()["serve.cancelled"]
            >= 1
        )


class TestBackpressure:
    def test_queue_full_responds_429_with_retry_after(
        self, harness_factory
    ):
        harness = harness_factory(
            plan=hang_plan(), workers=1, queue_capacity=1
        )
        results = []

        def slow_order():
            results.append(
                harness.post(
                    "/order",
                    {"dataset": "epinion", "deadline_seconds": 1.2},
                )
            )

        threads = [
            threading.Thread(target=slow_order) for _ in range(2)
        ]
        threads[0].start()
        wait_until(
            lambda: harness.service.queue.stats()["inflight"] == 1
        )
        threads[1].start()
        wait_until(
            lambda: harness.service.queue.stats()["queue_depth"] == 1
        )
        status, payload, headers = harness.post(
            "/order", {"dataset": "epinion"}
        )
        assert status == 429
        assert payload["error"] == "queue_full"
        assert payload["retry_after"] > 0
        assert int(headers["Retry-After"]) >= 1
        for thread in threads:
            thread.join(timeout=10)
        # Both hung requests were cut off by their own deadlines.
        assert [status for status, _, _ in results] == [504, 504]
        _, stats, _ = harness.get("/stats")
        assert (
            stats["counters"]["serve.rejected_queue_full"] == 1
        )


class TestRetries:
    def test_transient_fault_retried_to_success(
        self, harness_factory
    ):
        plan = FaultPlan(
            (
                FaultSpec(
                    dataset="epinion",
                    algorithm="order",
                    ordering="gorder",
                    kind="error",
                    times=1,
                ),
            )
        )
        harness = harness_factory(
            plan=plan, retries=1, backoff_seconds=0.01
        )
        status, payload, _ = harness.post(
            "/order", {"dataset": "epinion"}
        )
        assert status == 200
        assert payload["source"] == "computed"
        _, stats, _ = harness.get("/stats")
        assert stats["counters"]["serve.retries"] == 1

    def test_permanent_fault_exhausts_retries(self, harness_factory):
        plan = FaultPlan(
            (
                FaultSpec(
                    dataset="epinion",
                    algorithm="order",
                    ordering="gorder",
                    kind="error",
                ),
            )
        )
        harness = harness_factory(
            plan=plan, retries=1, backoff_seconds=0.01
        )
        status, payload, _ = harness.post(
            "/order", {"dataset": "epinion"}
        )
        assert status == 400  # InjectedFault is a ReproError
        _, stats, _ = harness.get("/stats")
        assert stats["counters"]["serve.retries"] == 1
        assert stats["counters"]["serve.worker_errors"] == 1


class TestDrain:
    def test_drain_rejects_new_work_with_503(self, harness_factory):
        obs.configure(capture=True)
        harness = harness_factory()
        status, _, _ = harness.post(
            "/order", {"dataset": "epinion"}
        )
        assert status == 200
        outcome = harness.service.drain()
        assert outcome["unfinished"] == 0
        status, payload, headers = harness.post(
            "/order", {"dataset": "epinion"}
        )
        assert status == 503
        assert payload["error"] == "draining"
        assert int(headers["Retry-After"]) >= 1
        status, health, _ = harness.get("/health")
        assert status == 200
        assert health["status"] == "draining"
        # The drain ran under a *closed* span with its outcome
        # attached, plus a drained event.
        drain_spans = obs.span_stats().get("serve.drain")
        assert drain_spans is not None
        assert drain_spans.count == 1
        drained = [
            record
            for record in obs.captured()
            if record["name"] == "serve.drained"
        ]
        assert drained[0]["attrs"]["rejected_queued"] == 0

    def test_drain_is_idempotent(self, harness_factory):
        harness = harness_factory()
        first = harness.service.drain()
        assert "rejected_queued" in first
        assert harness.service.drain() == {"already_drained": True}

    def test_shutdown_endpoint_flags_the_service(self, harness):
        status, payload, _ = harness.post("/shutdown", {})
        assert status == 200
        assert payload["status"] == "draining"
        assert harness.service.shutdown_requested.is_set()


class TestUnixSocket:
    def test_serves_over_unix_socket(self, tmp_path):
        import http.client
        import socket

        from repro.serve import OrderingService, ServeConfig
        from repro.serve.server import _make_server

        socket_path = str(tmp_path / "repro.sock")
        config = ServeConfig(
            socket_path=socket_path, workers=1, queue_capacity=2
        )
        service = OrderingService(config)
        httpd = _make_server(config, service)
        thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.02},
            daemon=True,
        )
        thread.start()
        try:
            connection = http.client.HTTPConnection("localhost")
            connection.sock = socket.socket(
                socket.AF_UNIX, socket.SOCK_STREAM
            )
            connection.sock.connect(socket_path)
            connection.request("GET", "/health")
            response = connection.getresponse()
            payload = json.loads(response.read())
            connection.close()
            assert response.status == 200
            assert payload["status"] == "ok"
        finally:
            service.drain()
            httpd.shutdown()
            thread.join(timeout=2)
            httpd.server_close()


class TestGracefulShutdownProcess:
    """SIGTERM against the real CLI process: the exit-code contract."""

    def _spawn(self, *extra_args: str, tmp_path: Path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["PYTHONUNBUFFERED"] = "1"
        process = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys; from repro.cli import main; "
                "sys.exit(main(sys.argv[1:]))",
                "serve",
                "--port", "0",
                "--workers", "1",
                "--drain-timeout", "0.5",
                "--store-root", str(tmp_path / "store"),
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
        )
        line = process.stdout.readline()
        assert "serving on http://" in line, line
        port = int(line.split("http://")[1].split()[0].split(":")[1])
        return process, port

    def _post(self, port: int, path: str, body: dict, timeout: float):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout
            ) as response:
                return response.status
        except urllib.error.HTTPError as error:
            error.read()
            return error.code
        except (urllib.error.URLError, ConnectionError, OSError):
            return None  # connection died during process exit

    def test_sigterm_idle_daemon_exits_zero(self, tmp_path):
        process, port = self._spawn(tmp_path=tmp_path)
        try:
            assert (
                self._post(port, "/order", {"dataset": "epinion"}, 30)
                == 200
            )
            process.send_signal(signal.SIGTERM)
            stdout, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0
        assert "drained:" in stdout
        outcome = json.loads(stdout.split("drained:", 1)[1])
        assert outcome["cancelled_inflight"] == 0

    def test_sigterm_mid_request_cancels_and_exits_zero(
        self, tmp_path
    ):
        process, port = self._spawn(
            "--inject",
            "dataset=epinion,algorithm=order,ordering=gorder,"
            "kind=hang",
            tmp_path=tmp_path,
        )
        statuses = []
        try:
            poster = threading.Thread(
                target=lambda: statuses.append(
                    self._post(
                        port,
                        "/order",
                        {
                            "dataset": "epinion",
                            "deadline_seconds": 30,
                        },
                        timeout=30,
                    )
                )
            )
            poster.start()
            time.sleep(0.5)  # let the hung request reach a worker
            process.send_signal(signal.SIGTERM)
            stdout, _ = process.communicate(timeout=30)
            poster.join(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0
        outcome = json.loads(stdout.split("drained:", 1)[1])
        assert outcome["cancelled_inflight"] == 1
        assert outcome["unfinished"] == 0
        # The client saw the cancellation (503 after the 499→503
        # mapping) — or lost the connection during process exit.
        assert statuses[0] in (503, None)
