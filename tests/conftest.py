"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.graph import from_edges, generators
from repro.graph.csr import CSRGraph


@pytest.fixture
def triangle() -> CSRGraph:
    """3-cycle: 0 -> 1 -> 2 -> 0."""
    return from_edges([(0, 1), (1, 2), (2, 0)], name="triangle")


@pytest.fixture
def diamond() -> CSRGraph:
    """0 -> {1, 2} -> 3 (plus 3 -> 0 making it strongly connected)."""
    return from_edges(
        [(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)], name="diamond"
    )


@pytest.fixture
def two_components() -> CSRGraph:
    """Two disjoint directed triangles (6 nodes)."""
    return from_edges(
        [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
        name="two-triangles",
    )


@pytest.fixture
def small_social() -> CSRGraph:
    """A small but non-trivial social analogue (deterministic)."""
    return generators.social_graph(
        120, edges_per_node=5, seed=42, name="small-social"
    )


@pytest.fixture
def small_web() -> CSRGraph:
    """A small but non-trivial web analogue (deterministic)."""
    return generators.web_graph(
        200, pages_per_host=20, out_degree=6, seed=42, name="small-web"
    )


def edge_list_strategy(
    max_nodes: int = 12, max_edges: int = 40
) -> st.SearchStrategy:
    """Random (num_nodes, edge list) pairs for property tests."""
    return st.integers(min_value=1, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ),
                max_size=max_edges,
            ),
        )
    )


def graph_strategy(
    max_nodes: int = 12, max_edges: int = 40
) -> st.SearchStrategy:
    """Random small CSR graphs for property tests."""
    return edge_list_strategy(max_nodes, max_edges).map(
        lambda pair: from_edges(pair[1], num_nodes=pair[0])
    )


def assert_valid_permutation(perm: np.ndarray, num_nodes: int) -> None:
    """Assert ``perm`` is a permutation of ``range(num_nodes)``."""
    assert perm.shape == (num_nodes,)
    assert sorted(int(p) for p in perm) == list(range(num_nodes))
