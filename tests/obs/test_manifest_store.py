"""Run manifests and the manifest-stamped result-store schema."""

import json
import sys

import numpy as np
import pytest

from repro import obs
from repro.cache import CacheStats, RunCost
from repro.perf import RunResult
from repro.perf.store import (
    SCHEMA_VERSION,
    ResultStoreError,
    load_results,
    read_archive,
    save_results,
)


def make_result(ordering="o", cycles=100.0):
    return RunResult(
        dataset="d",
        algorithm="a",
        ordering=ordering,
        cost=RunCost(execute_cycles=cycles * 0.3,
                     stall_cycles=cycles * 0.7),
        stats=CacheStats(1000, 100, 100, 50, 50, 10),
        ordering_seconds=0.5,
        simulation_seconds=1.5,
    )


class TestManifest:
    def test_environment_fields(self):
        manifest = obs.run_manifest(profile="quick", seed=7)
        assert manifest["python"] == sys.version.split()[0]
        assert manifest["numpy"] == np.__version__
        assert manifest["platform"]
        assert manifest["machine"]
        assert manifest["profile"] == "quick"
        assert manifest["seed"] == 7
        assert manifest["created_unix"] > 0
        assert "repro_version" in manifest

    def test_extra_fields_merge(self):
        manifest = obs.run_manifest(command="run", argv=["a", "b"])
        assert manifest["command"] == "run"
        assert manifest["argv"] == ["a", "b"]

    def test_json_serialisable(self):
        json.dumps(obs.run_manifest())

    def test_git_sha_shape(self):
        sha = obs.git_sha()
        assert sha is None or (
            len(sha) == 40 and all(c in "0123456789abcdef" for c in sha)
        )


class TestManifestStamping:
    def test_save_stamps_schema_and_manifest(self, tmp_path):
        path = tmp_path / "run.json"
        save_results([make_result()], path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA_VERSION == 3
        assert payload["manifest"]["python"] == sys.version.split()[0]

    def test_explicit_manifest_wins(self, tmp_path):
        path = tmp_path / "run.json"
        save_results(
            [make_result()], path,
            manifest=obs.run_manifest(profile="full", seed=9),
        )
        archive = read_archive(path)
        assert archive.manifest["profile"] == "full"
        assert archive.manifest["seed"] == 9

    def test_round_trip_with_metadata(self, tmp_path):
        path = tmp_path / "run.json"
        results = {
            ("d", "a", "o"): make_result(),
            ("d", "a", "p"): make_result(ordering="p", cycles=200.0),
        }
        save_results(results, path, metadata={"note": "x"})
        archive = read_archive(path)
        assert archive.results == results
        assert archive.metadata == {"note": "x"}
        assert archive.schema == 3

    def test_load_results_still_returns_plain_dict(self, tmp_path):
        path = tmp_path / "run.json"
        save_results([make_result()], path)
        assert ("d", "a", "o") in load_results(path)


class TestBackwardCompatibility:
    def v1_payload(self):
        return {
            "schema": 1,
            "metadata": {"profile": "quick"},
            "results": [
                {
                    "dataset": "d",
                    "algorithm": "a",
                    "ordering": "o",
                    "cost": {
                        "execute_cycles": 30.0,
                        "stall_cycles": 70.0,
                    },
                    "stats": {
                        "l1_refs": 1000, "l1_misses": 100,
                        "l2_refs": 100, "l2_misses": 50,
                        "l3_refs": 50, "l3_misses": 10,
                    },
                    "ordering_seconds": 0.5,
                    "simulation_seconds": 1.5,
                }
            ],
        }

    def test_v1_archive_loads(self, tmp_path):
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(self.v1_payload()))
        archive = read_archive(path)
        assert archive.schema == 1
        assert archive.manifest is None
        assert archive.metadata == {"profile": "quick"}
        assert ("d", "a", "o") in archive.results

    def test_unknown_schema_is_a_clear_error(self, tmp_path):
        path = tmp_path / "future.json"
        payload = self.v1_payload()
        payload["schema"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(
            ResultStoreError, match="unsupported schema 99"
        ) as excinfo:
            read_archive(path)
        assert "versions 1, 2, 3" in str(excinfo.value)

    def test_missing_schema_is_an_error(self, tmp_path):
        path = tmp_path / "none.json"
        path.write_text(json.dumps({"results": []}))
        with pytest.raises(ResultStoreError, match="unsupported schema"):
            load_results(path)
