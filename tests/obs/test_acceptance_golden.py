"""Golden-file tests on a recorded acceptance trace.

``data/acceptance_trace.jsonl`` is a committed trace from a real
``repro-gorder run --dataset epinion --algorithm nq --ordering gorder``
invocation.  Because the trace (and therefore every duration in it) is
frozen, the flamegraph and critical-path renderings are byte-stable:
the goldens pin the folded-stack format, the weight arithmetic and the
path selection against accidental drift.  Regenerate with::

    repro-gorder telemetry flamegraph tests/obs/data/acceptance_trace.jsonl
    repro-gorder telemetry critical-path tests/obs/data/acceptance_trace.jsonl
"""

import pathlib

from repro.cli import main
from repro.obs.trace import (
    build_span_tree,
    critical_path,
    folded_stacks,
    render_critical_path,
    render_folded,
)

DATA = pathlib.Path(__file__).parent / "data"
TRACE = DATA / "acceptance_trace.jsonl"


def golden(name):
    return (DATA / name).read_text(encoding="utf-8")


class TestFlamegraphGolden:
    def test_api_matches_golden(self):
        tree = build_span_tree(path=TRACE)
        folded = render_folded(folded_stacks(tree))
        assert folded + "\n" == golden("acceptance_flamegraph.txt")

    def test_cli_matches_golden(self, capsys):
        assert main(["telemetry", "flamegraph", str(TRACE)]) == 0
        out = capsys.readouterr().out
        assert out == golden("acceptance_flamegraph.txt")

    def test_cli_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "flame.folded"
        assert main([
            "telemetry", "flamegraph", str(TRACE),
            "--output", str(target),
        ]) == 0
        assert (
            target.read_text(encoding="utf-8")
            == golden("acceptance_flamegraph.txt")
        )


class TestCriticalPathGolden:
    def test_api_matches_golden(self):
        tree = build_span_tree(path=TRACE)
        assert critical_path(tree)[0].name == "ordering.compute"
        rendered = render_critical_path(tree)
        assert rendered + "\n" == golden("acceptance_critical_path.txt")

    def test_cli_matches_golden(self, capsys):
        assert main(["telemetry", "critical-path", str(TRACE)]) == 0
        out = capsys.readouterr().out
        assert out == golden("acceptance_critical_path.txt")


class TestTraceShape:
    """The committed trace still looks like a real run's trace."""

    def test_contains_kernel_phases(self):
        tree = build_span_tree(path=TRACE)
        names = set()

        def walk(nodes):
            for node in nodes:
                names.add(node.name)
                walk(node.children)

        walk(tree.roots)
        assert "ordering.compute" in names
        assert "gorder.greedy" in names
        assert "cache.replay.levels" in names

    def test_summary_cli_still_reads_it(self, capsys):
        assert main(["telemetry", "summary", str(TRACE)]) == 0
        assert "Top spans by total time" in capsys.readouterr().out
