"""Counter accuracy of the instrumented kernels on known tiny graphs."""

import pytest

from repro import obs
from repro.graph import from_edges
from repro.ordering.gorder import gorder_sequence
from repro.ordering.gorder_lazy import gorder_sequence_lazy
from repro.ordering.unit_heap import MeteredUnitHeap
from repro.perf.runner import OrderingCache, run_cell


@pytest.fixture
def cycle4():
    """Directed 4-cycle: every node has out-degree = in-degree = 1."""
    return from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 0)], num_nodes=4, name="cycle4"
    )


class TestMeteredUnitHeap:
    def test_counts_each_operation(self):
        heap = MeteredUnitHeap(3)
        heap.increase(0)
        heap.increase(0)
        heap.decrease(0)
        heap.remove(2)
        heap.increase(2)  # addressed at a removed item: still an event
        assert heap.pop_max() == 0
        assert heap.increases == 3
        assert heap.decreases == 1
        assert heap.removes == 1
        assert heap.pops == 1
        assert heap.priority_updates == 4

    def test_same_semantics_as_plain_heap(self):
        from repro.ordering.unit_heap import UnitHeap

        plain, metered = UnitHeap(5), MeteredUnitHeap(5)
        for heap in (plain, metered):
            heap.increase(3)
            heap.increase(3)
            heap.increase(1)
            heap.remove(4)
        assert [plain.pop_max() for _ in range(4)] == [
            metered.pop_max() for _ in range(4)
        ]


class TestGorderCounters:
    def test_exact_counts_on_cycle(self, cycle4):
        """On a 4-cycle each placement fires exactly 2 unit updates
        (one out-neighbour, one in-neighbour, no siblings), and the
        greedy pops n-1 times after the seeded start."""
        obs.configure()
        gorder_sequence(cycle4)
        counters = obs.counters()
        assert counters["gorder.heap_pops"] == 3
        assert counters["gorder.priority_updates"] == 8

    def test_disabled_run_keeps_counters_empty(self, cycle4):
        gorder_sequence(cycle4)
        assert obs.counters() == {}

    def test_same_sequence_with_and_without_telemetry(self, cycle4):
        bare = gorder_sequence(cycle4)
        obs.configure()
        metered = gorder_sequence(cycle4)
        assert bare.tolist() == metered.tolist()

    def test_greedy_span_emitted(self, cycle4):
        obs.configure(capture=True)
        gorder_sequence(cycle4)
        ends = [
            e for e in obs.captured()
            if e["kind"] == "span_end" and e["name"] == "gorder.greedy"
        ]
        assert len(ends) == 1
        assert ends[0]["attrs"]["n"] == 4
        assert ends[0]["attrs"]["backend"] == "batched"

    def test_greedy_span_names_loop_backend(self, cycle4):
        obs.configure(capture=True)
        gorder_sequence(cycle4, backend="loop")
        ends = [
            e for e in obs.captured()
            if e["kind"] == "span_end" and e["name"] == "gorder.greedy"
        ]
        assert ends[0]["attrs"]["backend"] == "loop"

    def test_batched_moves_counter(self, cycle4):
        obs.configure()
        gorder_sequence(cycle4, backend="batched")
        counters = obs.counters()
        # The 4-cycle's 8 unit events dedup to at most 8 moved items.
        assert 0 < counters["gorder.batched_moves"] <= 8
        assert counters["gorder.priority_updates"] == 8


class TestGorderLazyCounters:
    def test_pops_and_pushes(self, cycle4):
        obs.configure()
        gorder_sequence_lazy(cycle4)
        counters = obs.counters()
        assert counters["gorder_lazy.heap_pops"] == 3
        # Every live update pushes one fresh entry; the 4-cycle fires
        # 8 update events of which those at placed nodes are dropped.
        assert 0 < counters["gorder_lazy.heap_pushes"] <= 8
        assert counters["gorder_lazy.lazy_discards"] >= 0

    def test_instrumented_lazy_is_still_a_permutation(self, cycle4):
        obs.configure()
        lazy = gorder_sequence_lazy(cycle4)
        assert sorted(lazy.tolist()) == [0, 1, 2, 3]

    def test_greedy_span_backend_attribute(self, cycle4):
        obs.configure(capture=True)
        gorder_sequence_lazy(cycle4)
        ends = [
            e for e in obs.captured()
            if e["kind"] == "span_end" and e["name"] == "gorder.greedy"
        ]
        assert ends[0]["attrs"]["backend"] == "lazy_heap"


class TestRunCellCounters:
    def test_cache_counters_match_stats_exactly(self, cycle4):
        obs.configure()
        result = run_cell(cycle4, "nq", "original", cache=OrderingCache())
        counters = obs.counters()
        stats = result.stats
        assert counters["cache.l1.refs"] == stats.l1_refs
        assert counters["cache.l1.misses"] == stats.l1_misses
        assert counters["cache.l2.refs"] == stats.l2_refs
        assert counters["cache.l3.refs"] == stats.l3_refs
        assert counters["cache.l1.refs"] > 0

    def test_cache_counters_accumulate_over_runs(self, cycle4):
        obs.configure()
        cache = OrderingCache()
        first = run_cell(cycle4, "nq", "original", cache=cache)
        second = run_cell(cycle4, "nq", "original", cache=cache)
        counters = obs.counters()
        assert (
            counters["cache.l1.refs"]
            == first.stats.l1_refs + second.stats.l1_refs
        )

    def test_memoisation_counters(self, cycle4):
        obs.configure()
        cache = OrderingCache()
        run_cell(cycle4, "nq", "gorder", cache=cache)
        run_cell(cycle4, "nq", "gorder", cache=cache)
        counters = obs.counters()
        assert counters["runner.ordering_memo_misses"] == 1
        assert counters["runner.ordering_memo_hits"] == 1

    def test_simulation_and_ordering_spans(self, cycle4):
        obs.configure(capture=True)
        run_cell(cycle4, "nq", "gorder", cache=OrderingCache())
        names = [
            e["name"] for e in obs.captured() if e["kind"] == "span_end"
        ]
        assert "ordering.compute" in names
        assert "run.simulate" in names
        assert "gorder.greedy" in names
