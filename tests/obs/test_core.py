"""Core telemetry behaviour: spans, counters, events, disabled path."""

import json
import logging
import threading
import time

import pytest

from repro import obs
from repro.obs.core import LOGGER_NAME


class TestDisabled:
    def test_disabled_by_default(self):
        assert not obs.enabled()

    def test_disabled_span_is_noop_singleton(self):
        assert obs.span("a") is obs.span("b")
        assert obs.span("a") is obs.NOOP_SPAN

    def test_disabled_records_nothing(self):
        with obs.span("x", n=1):
            obs.inc("c", 5)
            obs.event("e", k="v")
            obs.progress("p")
        obs.emit_counters()
        assert obs.counters() == {}
        assert obs.span_stats() == {}

    def test_disabled_emits_no_events(self):
        """Regression: nothing may reach the logger while disabled."""
        records = []

        class Probe(logging.Handler):
            def emit(self, record):
                records.append(record)

        logger = logging.getLogger(LOGGER_NAME)
        probe = Probe(level=logging.DEBUG)
        logger.addHandler(probe)
        logger.setLevel(logging.DEBUG)
        try:
            with obs.span("x"):
                obs.event("e")
                obs.inc("c")
                obs.progress("p")
            obs.emit_counters()
            obs.emit_manifest()
        finally:
            logger.removeHandler(probe)
        assert records == []

    def test_noop_span_supports_set(self):
        assert obs.span("a").set(k=1) is obs.NOOP_SPAN


class TestSpans:
    def test_nesting_parent_ids(self):
        obs.configure(capture=True)
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        events = obs.captured()
        starts = {e["name"]: e for e in events if e["kind"] == "span_start"}
        assert starts["inner"]["parent_id"] == starts["outer"]["span_id"]
        assert "parent_id" not in starts["outer"]

    def test_span_timing(self):
        obs.configure(capture=True)
        with obs.span("sleepy"):
            time.sleep(0.02)
        stats = obs.span_stats()["sleepy"]
        assert stats.count == 1
        assert stats.total_seconds >= 0.02
        end = [
            e for e in obs.captured()
            if e["kind"] == "span_end" and e["name"] == "sleepy"
        ][0]
        assert end["dur_s"] == pytest.approx(stats.total_seconds)
        assert end["ok"] is True

    def test_span_aggregates_accumulate(self):
        obs.configure()
        for _ in range(3):
            with obs.span("loop"):
                pass
        stats = obs.span_stats()["loop"]
        assert stats.count == 3
        assert stats.max_seconds <= stats.total_seconds

    def test_span_records_failure(self):
        obs.configure(capture=True)
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        end = [
            e for e in obs.captured() if e["kind"] == "span_end"
        ][0]
        assert end["ok"] is False

    def test_span_set_attaches_attributes(self):
        obs.configure(capture=True)
        with obs.span("s") as span:
            span.set(rows=7)
        end = [e for e in obs.captured() if e["kind"] == "span_end"][0]
        assert end["attrs"]["rows"] == 7

    def test_sibling_spans_share_parent(self):
        obs.configure(capture=True)
        with obs.span("parent"):
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        starts = {e["name"]: e for e in obs.captured()
                  if e["kind"] == "span_start"}
        assert starts["a"]["parent_id"] == starts["parent"]["span_id"]
        assert starts["b"]["parent_id"] == starts["parent"]["span_id"]


class TestCounters:
    def test_inc_accumulates(self):
        obs.configure()
        obs.inc("x")
        obs.inc("x", 5)
        obs.inc("y", 2)
        assert obs.counters() == {"x": 6, "y": 2}

    def test_thread_safety(self):
        obs.configure()

        def work():
            for _ in range(1000):
                obs.inc("shared")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert obs.counters()["shared"] == 8000

    def test_emit_counters_event(self):
        obs.configure(capture=True)
        obs.inc("k", 3)
        obs.emit_counters()
        counter_events = [
            e for e in obs.captured() if e["kind"] == "counters"
        ]
        assert counter_events[-1]["counters"] == {"k": 3}

    def test_emit_counters_empty_is_silent(self):
        obs.configure(capture=True)
        obs.emit_counters()
        assert [e for e in obs.captured() if e["kind"] == "counters"] == []


class TestEvents:
    def test_event_payload(self):
        obs.configure(capture=True)
        obs.event("thing.happened", level="debug", value=3)
        event = obs.captured()[0]
        assert event["kind"] == "event"
        assert event["name"] == "thing.happened"
        assert event["level"] == "debug"
        assert event["attrs"] == {"value": 3}
        assert event["ts"] > 0

    def test_unknown_level_rejected(self):
        obs.configure()
        with pytest.raises(obs.TelemetryError, match="unknown log level"):
            obs.event("e", level="loud")

    def test_configure_unknown_level_rejected(self):
        with pytest.raises(obs.TelemetryError, match="unknown log level"):
            obs.configure(level="shout")


class TestLifecycle:
    def test_shutdown_is_idempotent(self):
        obs.configure(capture=True)
        obs.shutdown()
        obs.shutdown()
        assert not obs.enabled()

    def test_reset_clears_state(self):
        obs.configure()
        obs.inc("x")
        with obs.span("s"):
            pass
        obs.reset()
        assert obs.counters() == {}
        assert obs.span_stats() == {}

    def test_counters_survive_shutdown(self):
        obs.configure()
        obs.inc("x")
        obs.shutdown()
        assert obs.counters() == {"x": 1}

    def test_shutdown_snapshots_handlers_atomically(self):
        """Regression: a sink attached *during* shutdown (e.g. from
        another thread, modelled here by a reentrant ``close()``)
        must stay tracked and open for the next shutdown — the old
        non-atomic loop closed it mid-iteration and then forgot it.
        """
        from repro.obs.core import Telemetry

        class Probe(logging.Handler):
            def __init__(self):
                super().__init__()
                self.closed = False

            def emit(self, record):
                pass

            def close(self):
                self.closed = True
                super().close()

        telemetry = Telemetry()
        follower = Probe()

        class Reattaching(Probe):
            def close(self):
                telemetry.add_handler(follower)
                super().close()

        first = Reattaching()
        telemetry.add_handler(first)
        telemetry.shutdown()
        assert first.closed
        # The concurrently attached sink survived this shutdown...
        assert not follower.closed
        assert telemetry._handlers == [follower]
        # ...and the next one owns it.
        telemetry.shutdown()
        assert follower.closed
        assert telemetry._handlers == []


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.configure(jsonl_path=str(path))
        obs.emit_manifest(command="test")
        with obs.span("work", n=2):
            obs.inc("widgets", 2)
        obs.event("note", detail="hi")
        obs.emit_counters()
        obs.shutdown()

        lines = path.read_text().splitlines()
        payloads = [json.loads(line) for line in lines]
        kinds = [p["kind"] for p in payloads]
        assert kinds == [
            "manifest", "span_start", "span_end", "event", "counters",
        ]
        assert payloads[-1]["counters"] == {"widgets": 2}
        assert payloads[0]["manifest"]["command"] == "test"
        # And the summariser reads its own format back.
        summary = obs.summarize_trace(path)
        assert summary.counters == {"widgets": 2}
        assert summary.spans[0].name == "work"
        assert summary.unclosed == 0

    def test_unwritable_path_raises(self, tmp_path):
        with pytest.raises(obs.TelemetryError, match="cannot open"):
            obs.configure(jsonl_path=str(tmp_path / "no" / "dir.jsonl"))

    def test_text_stream_lines(self, tmp_path):
        import io

        stream = io.StringIO()
        obs.configure(level="info", text_stream=stream)
        obs.event("hello.world", k="v")
        obs.event("quiet", level="debug")  # below the sink level
        obs.shutdown()
        text = stream.getvalue()
        assert "hello.world" in text
        assert "k=v" in text
        assert "quiet" not in text
