"""Phase profiler: obs.profile() spans, CPU accounting, overhead."""

import time

import pytest

from repro import obs


class TestDisabled:
    def test_disabled_profile_is_noop_singleton(self):
        assert obs.profile("a") is obs.NOOP_SPAN

    def test_disabled_records_nothing(self):
        with obs.profile("x", n=1):
            pass
        assert obs.phase_stats() == {}
        assert obs.span_stats() == {}

    def test_disabled_overhead_is_bounded(self):
        """Guard: a disabled profile() hook must stay trivially cheap.

        The kernels pay one of these per *call* (hot loops hoist the
        ``enabled()`` check), so a microsecond-scale bound leaves the
        <5% budget of bench_micro.py untouched.
        """
        rounds = 20_000
        start = time.perf_counter()
        for _ in range(rounds):
            with obs.profile("bench.noop"):
                pass
        per_hook = (time.perf_counter() - start) / rounds
        assert per_hook < 20e-6, (
            f"disabled obs.profile costs {per_hook * 1e6:.2f}us"
        )


class TestEnabled:
    def test_phase_records_wall_and_cpu(self):
        obs.configure(capture=True)
        with obs.profile("phase.test", n=3):
            sum(range(50_000))
        stats = obs.phase_stats()
        assert set(stats) == {"phase.test"}
        entry = stats["phase.test"]
        assert entry.count == 1
        assert entry.wall_seconds > 0.0
        assert entry.cpu_seconds >= 0.0
        assert entry.max_wall_seconds == entry.wall_seconds

    def test_phase_emits_span_events_with_cpu(self):
        obs.configure(capture=True)
        with obs.profile("phase.test", n=3):
            pass
        kinds = [
            (event["kind"], event["name"]) for event in obs.captured()
        ]
        assert ("span_start", "phase.test") in kinds
        assert ("span_end", "phase.test") in kinds
        end = [
            event
            for event in obs.captured()
            if event["kind"] == "span_end"
        ][0]
        assert "cpu_s" in end
        assert end["ok"] is True
        assert end["attrs"] == {"n": 3}

    def test_phase_also_feeds_span_stats(self):
        """Phases are spans: the summary tooling sees them as such."""
        obs.configure()
        with obs.profile("phase.test"):
            pass
        assert "phase.test" in obs.span_stats()

    def test_nested_phase_parent_linkage(self):
        obs.configure(capture=True)
        with obs.profile("phase.outer"):
            with obs.profile("phase.inner"):
                pass
        events = {
            event["name"]: event
            for event in obs.captured()
            if event["kind"] == "span_end"
        }
        outer = events["phase.outer"]
        inner = events["phase.inner"]
        assert inner["parent_id"] == outer["span_id"]

    def test_phase_mixes_with_plain_spans(self):
        obs.configure(capture=True)
        with obs.span("outer"):
            with obs.profile("phase.inner"):
                pass
        events = {
            event["name"]: event
            for event in obs.captured()
            if event["kind"] == "span_end"
        }
        assert (
            events["phase.inner"]["parent_id"]
            == events["outer"]["span_id"]
        )

    def test_exception_closes_phase_with_ok_false(self):
        obs.configure(capture=True)
        with pytest.raises(RuntimeError):
            with obs.profile("phase.fails"):
                raise RuntimeError("boom")
        end = [
            event
            for event in obs.captured()
            if event["kind"] == "span_end"
        ][0]
        assert end["ok"] is False
        assert obs.phase_stats()["phase.fails"].count == 1

    def test_aggregation_across_calls(self):
        obs.configure()
        for _ in range(4):
            with obs.profile("phase.repeat"):
                pass
        entry = obs.phase_stats()["phase.repeat"]
        assert entry.count == 4
        assert entry.wall_seconds >= entry.max_wall_seconds

    def test_cpu_fraction(self):
        from repro.obs.core import PhaseStats

        assert PhaseStats().cpu_fraction == 0.0
        busy = PhaseStats(
            count=1, wall_seconds=2.0, cpu_seconds=1.0,
            max_wall_seconds=2.0,
        )
        assert busy.cpu_fraction == 0.5

    def test_reset_clears_phase_stats(self):
        obs.configure()
        with obs.profile("phase.reset"):
            pass
        obs.reset()
        assert obs.phase_stats() == {}


class TestKernelHooks:
    """The hot paths named by the tentpole actually emit phases."""

    def test_gorder_batched_emits_phases(self):
        from repro.graph.generators import erdos_renyi
        from repro.ordering import gorder_order

        obs.configure()
        gorder_order(erdos_renyi(300, 2000, seed=1))
        stats = obs.phase_stats()
        assert "gorder.greedy" in stats
        assert "gorder.phase.expand" in stats

    def test_cache_replay_emits_phases(self):
        import numpy as np

        from repro.cache import scaled_hierarchy

        obs.configure()
        hierarchy = scaled_hierarchy()
        rng = np.random.default_rng(0)
        hierarchy.replay(rng.integers(0, 512, size=4000))
        stats = obs.phase_stats()
        assert "cache.replay.levels" in stats
        assert "cache.replay.classify" in stats

    def test_sweep_cell_emits_phase(self):
        from repro import perf

        obs.configure()
        # A private ordering memo: warming the global cache here would
        # make later tests skip their ordering.compute spans.
        engine = perf.SweepEngine(cache=perf.OrderingCache())
        profile = perf.Profile(
            name="tiny",
            datasets=("epinion",),
            orderings=("original", "gorder"),
            algorithms=("nq",),
        )
        engine.run(profile)
        stats = obs.phase_stats()
        assert "sweep.cell" in stats
        assert stats["sweep.cell"].count == 2
