"""Telemetry tests share one process-wide registry: reset around each."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_telemetry():
    obs.reset()
    yield
    obs.reset()
