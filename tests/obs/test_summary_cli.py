"""Trace summarisation and the CLI telemetry integration."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.summary import summarize_trace


def write_trace(path, payloads):
    path.write_text(
        "\n".join(json.dumps(payload) for payload in payloads) + "\n"
    )


class TestSummarizeTrace:
    def test_aggregates_spans_by_name(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, [
            {"kind": "span_start", "name": "a", "span_id": 1},
            {"kind": "span_end", "name": "a", "span_id": 1,
             "dur_s": 0.25},
            {"kind": "span_start", "name": "a", "span_id": 2},
            {"kind": "span_end", "name": "a", "span_id": 2,
             "dur_s": 0.75},
            {"kind": "span_start", "name": "b", "span_id": 3},
            {"kind": "span_end", "name": "b", "span_id": 3,
             "dur_s": 2.0},
        ])
        summary = summarize_trace(path)
        assert summary.num_events == 6
        assert [s.name for s in summary.spans] == ["b", "a"]
        a = summary.spans[1]
        assert a.count == 2
        assert a.total_seconds == pytest.approx(1.0)
        assert a.mean_seconds == pytest.approx(0.5)
        assert a.max_seconds == pytest.approx(0.75)

    def test_last_counters_event_wins(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, [
            {"kind": "counters", "name": "counters",
             "counters": {"x": 1}},
            {"kind": "counters", "name": "counters",
             "counters": {"x": 5, "y": 2}},
        ])
        assert summarize_trace(path).counters == {"x": 5, "y": 2}

    def test_manifest_and_unclosed_spans(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, [
            {"kind": "manifest", "name": "manifest",
             "manifest": {"git_sha": "abc"}},
            {"kind": "span_start", "name": "crashed", "span_id": 1},
        ])
        summary = summarize_trace(path)
        assert summary.manifest == {"git_sha": "abc"}
        assert summary.unclosed == 1

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "event", "name": "e"}\n\n\n')
        assert summarize_trace(path).num_events == 1

    def test_invalid_json_names_the_line(self, tmp_path):
        # Mid-file corruption is a real problem and still raises; only
        # a torn *final* line (a killed writer) is tolerated.
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"kind": "event", "name": "e"}\n'
            "{oops\n"
            '{"kind": "event", "name": "f"}\n'
        )
        with pytest.raises(obs.TelemetryError, match=r":2: not valid"):
            summarize_trace(path)

    def test_torn_final_line_is_discarded(self, tmp_path):
        # The journal-tail contract of the sweep checkpoint reader: a
        # process killed mid-write leaves half a line, which must not
        # make the whole trace unreadable.
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"kind": "event", "name": "e"}\n{"kind": "spa'
        )
        summary = summarize_trace(path)
        assert summary.num_events == 1

    def test_torn_final_line_with_trailing_blank(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"kind": "event", "name": "e"}\n{"kind": "spa\n\n'
        )
        summary = summarize_trace(path)
        assert summary.num_events == 1

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(obs.TelemetryError, match="expected a JSON"):
            summarize_trace(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(obs.TelemetryError, match="cannot read"):
            summarize_trace(tmp_path / "nope.jsonl")


class TestCliTelemetry:
    def test_run_writes_trace_with_required_content(self, tmp_path):
        """The acceptance flow: run --log-json then telemetry."""
        trace = tmp_path / "trace.jsonl"
        assert main([
            "run", "--dataset", "epinion", "--algorithm", "pr",
            "--ordering", "gorder", "--log-json", str(trace),
        ]) == 0
        payloads = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        kinds = {p["kind"] for p in payloads}
        assert {"manifest", "span_start", "span_end",
                "counters"} <= kinds
        span_names = {
            p["name"] for p in payloads if p["kind"] == "span_end"
        }
        assert "ordering.compute" in span_names
        assert "run.simulate" in span_names
        counters = [
            p for p in payloads if p["kind"] == "counters"
        ][-1]["counters"]
        assert counters["cache.l1.refs"] > 0
        assert counters["cache.l1.misses"] > 0
        assert counters["gorder.heap_pops"] > 0

    def test_telemetry_subcommand_renders_summary(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "run", "--dataset", "epinion", "--algorithm", "nq",
            "--ordering", "gorder", "--log-json", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["telemetry", str(trace)]) == 0
        output = capsys.readouterr().out
        assert "Top spans by total time" in output
        assert "run.simulate" in output
        assert "Counter totals" in output
        assert "cache.l1.refs" in output

    def test_telemetry_subcommand_on_missing_file(self, capsys):
        assert main(["telemetry", "/nonexistent/trace.jsonl"]) == 1
        assert "error" in capsys.readouterr().err

    def test_unwritable_log_json_path_fails_cleanly(self, capsys):
        assert main([
            "run", "--dataset", "epinion", "--algorithm", "nq",
            "--log-json", "/nonexistent_dir/trace.jsonl",
        ]) == 1
        err = capsys.readouterr().err
        assert "error: cannot open" in err

    def test_verbose_alias_emits_text_to_stderr(self, capsys):
        assert main([
            "run", "--dataset", "epinion", "--algorithm", "nq", "-v",
        ]) == 0
        err = capsys.readouterr().err
        assert "span_end" in err
        assert "run.simulate" in err

    def test_log_level_flag(self, capsys):
        assert main([
            "run", "--dataset", "epinion", "--algorithm", "nq",
            "--log-level", "warning",
        ]) == 0
        # info-level spans are filtered out at warning.
        assert "span_end" not in capsys.readouterr().err

    def test_no_flags_means_disabled(self, capsys, tmp_path):
        assert main([
            "run", "--dataset", "epinion", "--algorithm", "nq",
        ]) == 0
        assert not obs.enabled()
        assert obs.counters() == {}

    def test_speedup_matrix_reports_progress_events(self):
        """The old ``if progress: print`` path is now telemetry."""
        from repro.perf import Profile, speedup_matrix
        from repro.perf.runner import OrderingCache

        obs.configure(capture=True)
        profile = Profile(
            name="tiny",
            datasets=("epinion",),
            orderings=("original", "gorder"),
            algorithms=("nq",),
        )
        speedup_matrix(profile, cache=OrderingCache())
        cells = [
            e for e in obs.captured() if e["name"] == "speedup.cell"
        ]
        assert len(cells) == 2
        assert cells[0]["kind"] == "progress"
        assert cells[-1]["attrs"]["cell"] == 2
        assert cells[-1]["attrs"]["cells"] == 2
        sweeps = [
            e for e in obs.captured()
            if e["kind"] == "span_end"
            and e["name"] == "experiment.speedup_matrix"
        ]
        assert len(sweeps) == 1
