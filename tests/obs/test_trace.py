"""Trace analytics: span trees, critical paths, diffs, flamegraphs."""

import json
import threading

import pytest

from repro import obs
from repro.errors import InvalidParameterError
from repro.obs.trace import (
    build_span_tree,
    critical_path,
    diff_traces,
    folded_stacks,
    render_critical_path,
    render_diff,
    render_folded,
    render_tree,
)


def span_events(
    span_id,
    name,
    parent_id=None,
    ts=0.0,
    dur=1.0,
    attrs=None,
    cpu=None,
):
    """The (start, end) event pair one span writes to a trace."""
    start = {
        "kind": "span_start",
        "name": name,
        "ts": ts,
        "span_id": span_id,
        "parent_id": parent_id,
    }
    end = {
        "kind": "span_end",
        "name": name,
        "ts": ts + dur,
        "span_id": span_id,
        "parent_id": parent_id,
        "dur_s": dur,
        "ok": True,
    }
    if attrs:
        start["attrs"] = dict(attrs)
        end["attrs"] = dict(attrs)
    if cpu is not None:
        end["cpu_s"] = cpu
    return [start, end]


def nested_trace():
    """root(4s) -> child_a(2s) -> leaf(0.5s); root -> child_b(1s)."""
    return (
        span_events(1, "root", ts=0.0, dur=4.0)
        + span_events(2, "child_a", parent_id=1, ts=0.1, dur=2.0)
        + span_events(3, "leaf", parent_id=2, ts=0.2, dur=0.5)
        + span_events(4, "child_b", parent_id=1, ts=2.5, dur=1.0)
    )


class TestBuildSpanTree:
    def test_reconstructs_nesting(self):
        tree = build_span_tree(events=nested_trace())
        assert tree.num_spans == 4
        assert [r.name for r in tree.roots] == ["root"]
        root = tree.roots[0]
        assert [c.name for c in root.children] == [
            "child_a", "child_b",
        ]
        assert root.children[0].children[0].name == "leaf"

    def test_self_and_total_time(self):
        tree = build_span_tree(events=nested_trace())
        root = tree.roots[0]
        assert root.total_seconds == 4.0
        assert root.self_seconds == pytest.approx(1.0)  # 4 - 2 - 1
        child_a = root.children[0]
        assert child_a.self_seconds == pytest.approx(1.5)

    def test_shuffled_lines_build_the_same_tree(self):
        events = nested_trace()
        shuffled = [
            events[i] for i in (5, 0, 7, 2, 6, 1, 4, 3)
        ]
        straight = build_span_tree(events=nested_trace())
        reordered = build_span_tree(events=shuffled)
        assert render_tree(straight).splitlines()[1:] == (
            render_tree(reordered).splitlines()[1:]
        )

    def test_interleaved_multithread_trace(self):
        """Two threads' span events interleave in one JSONL file."""
        obs.configure(capture=True)

        def work(name):
            with obs.span(name):
                with obs.span(f"{name}.inner"):
                    pass

        threads = [
            threading.Thread(target=work, args=(f"t{i}",))
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        tree = build_span_tree(events=obs.captured())
        assert len(tree.roots) == 3
        for root in tree.roots:
            assert [c.name for c in root.children] == [
                f"{root.name}.inner"
            ]
        assert tree.unclosed == 0

    def test_unclosed_span_counts_children_only(self):
        events = nested_trace()[:-3]  # drop child_a/leaf/child_b ends
        events = [
            e for e in nested_trace()
            if not (e["kind"] == "span_end" and e["span_id"] == 1)
        ]
        tree = build_span_tree(events=events)
        assert tree.unclosed == 1
        root = tree.roots[0]
        assert not root.closed
        assert root.total_seconds == pytest.approx(3.0)  # 2 + 1
        assert root.self_seconds == 0.0

    def test_end_without_start_still_creates_node(self):
        events = nested_trace()[1:]  # torn head: root start lost
        tree = build_span_tree(events=events)
        assert tree.num_spans == 4
        assert tree.roots[0].duration == 4.0

    def test_orphan_parent_id_becomes_root(self):
        events = span_events(7, "orphan", parent_id=99)
        tree = build_span_tree(events=events)
        assert [r.name for r in tree.roots] == ["orphan"]

    def test_counters_and_manifest_captured(self):
        events = nested_trace() + [
            {"kind": "counters", "name": "counters",
             "counters": {"c.hits": 3}},
            {"kind": "manifest", "name": "manifest",
             "manifest": {"git_sha": "abc"}},
        ]
        tree = build_span_tree(events=events)
        assert tree.counters == {"c.hits": 3}
        assert tree.manifest == {"git_sha": "abc"}

    def test_reads_jsonl_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            "\n".join(json.dumps(e) for e in nested_trace()) + "\n"
        )
        tree = build_span_tree(path)
        assert tree.num_spans == 4
        assert tree.path == str(path)

    def test_needs_path_or_events(self):
        with pytest.raises(InvalidParameterError):
            build_span_tree()


class TestCriticalPath:
    def test_follows_heaviest_children(self):
        tree = build_span_tree(events=nested_trace())
        chain = critical_path(tree)
        assert [n.name for n in chain] == ["root", "child_a", "leaf"]

    def test_empty_trace(self):
        assert critical_path(build_span_tree(events=[])) == []
        assert "no spans" in render_critical_path(
            build_span_tree(events=[])
        )

    def test_heaviest_root_wins(self):
        events = (
            span_events(1, "light", ts=0.0, dur=1.0)
            + span_events(2, "heavy", ts=5.0, dur=3.0)
        )
        chain = critical_path(build_span_tree(events=events))
        assert [n.name for n in chain] == ["heavy"]

    def test_render_lists_key_attrs(self):
        events = span_events(
            1, "sweep.cell", dur=2.0,
            attrs={"dataset": "epinion", "seed": 3, "part": 1},
        )
        text = render_critical_path(build_span_tree(events=events))
        assert "dataset=epinion" in text
        assert "part=1" in text
        assert "seed" not in text  # not in the surfaced subset


class TestFoldedStacks:
    def test_golden_folded_output(self):
        tree = build_span_tree(events=nested_trace())
        assert render_folded(folded_stacks(tree)) == (
            "root 1000000\n"
            "root;child_a 1500000\n"
            "root;child_a;leaf 500000\n"
            "root;child_b 1000000"
        )

    def test_part_attribute_reaches_the_frame(self):
        events = span_events(1, "gorder.partitioned", dur=2.0)
        events += span_events(
            2, "gorder.partition", parent_id=1, ts=0.1, dur=0.5,
            attrs={"part": 0},
        )
        stacks = folded_stacks(build_span_tree(events=events))
        assert (
            "gorder.partitioned;gorder.partition part=0",
            500000,
        ) in stacks

    def test_semicolons_in_names_are_sanitised(self):
        events = span_events(1, "odd;name", dur=1.0)
        stacks = folded_stacks(build_span_tree(events=events))
        assert stacks == [("odd,name", 1000000)]

    def test_zero_weight_stacks_dropped(self):
        events = span_events(1, "outer", dur=1.0) + span_events(
            2, "inner", parent_id=1, ts=0.0, dur=1.0
        )
        stacks = folded_stacks(build_span_tree(events=events))
        assert stacks == [("outer;inner", 1000000)]

    def test_cpu_weight_uses_profiled_phases_only(self):
        events = span_events(1, "outer", dur=3.0) + span_events(
            2, "phase", parent_id=1, ts=0.0, dur=1.0, cpu=0.75
        )
        stacks = folded_stacks(
            build_span_tree(events=events), weight="cpu"
        )
        assert stacks == [("outer;phase", 750000)]

    def test_same_stack_merges(self):
        events = span_events(1, "root", dur=3.0)
        events += span_events(
            2, "rep", parent_id=1, ts=0.1, dur=1.0
        )
        events += span_events(
            3, "rep", parent_id=1, ts=1.5, dur=1.0
        )
        stacks = folded_stacks(build_span_tree(events=events))
        assert ("root;rep", 2000000) in stacks

    def test_unknown_weight_rejected(self):
        with pytest.raises(InvalidParameterError):
            folded_stacks(build_span_tree(events=[]), weight="gpu")


class TestDiff:
    def write(self, tmp_path, name, events):
        path = tmp_path / name
        path.write_text(
            "\n".join(json.dumps(e) for e in events) + "\n"
        )
        return path

    def test_span_and_counter_deltas(self, tmp_path):
        a = self.write(
            tmp_path, "a.jsonl",
            nested_trace()
            + [{"kind": "counters", "name": "counters",
                "counters": {"hits": 10, "same": 5}}],
        )
        b_events = (
            span_events(1, "root", ts=0.0, dur=6.0)
            + [{"kind": "counters", "name": "counters",
                "counters": {"hits": 25, "same": 5}}]
        )
        b = self.write(tmp_path, "b.jsonl", b_events)
        diff = diff_traces(a, b)
        rows = {row.name: row for row in diff.spans}
        assert rows["root"].delta == pytest.approx(2.0)
        assert rows["child_a"].delta == pytest.approx(-2.0)
        counter_rows = {row.name: row for row in diff.counters}
        assert counter_rows["hits"].delta == 15
        text = render_diff(diff)
        assert "root" in text and "hits" in text
        assert "same" not in text  # unchanged counters are elided

    def test_spans_sorted_by_change_magnitude(self, tmp_path):
        a = self.write(tmp_path, "a.jsonl", nested_trace())
        b = self.write(
            tmp_path, "b.jsonl",
            span_events(1, "root", dur=4.0)
            + span_events(2, "child_a", parent_id=1, ts=0.1, dur=3.5),
        )
        diff = diff_traces(a, b)
        assert diff.spans[0].name == "child_a"

    def test_identical_traces_render_no_differences(self, tmp_path):
        a = self.write(tmp_path, "a.jsonl", nested_trace())
        b = self.write(tmp_path, "b.jsonl", nested_trace())
        assert "no differences" in render_diff(diff_traces(a, b))


class TestRenderTree:
    def test_depth_and_threshold_filters(self):
        tree = build_span_tree(events=nested_trace())
        assert "leaf" not in render_tree(tree, max_depth=1)
        assert "leaf" in render_tree(tree, max_depth=2)
        assert "leaf" not in render_tree(tree, min_seconds=0.6)

    def test_unclosed_marker(self):
        events = [e for e in nested_trace() if e["span_id"] == 1][:1]
        text = render_tree(build_span_tree(events=events))
        assert "[unclosed]" in text
        assert "1 unclosed" in text
