"""Tests for the pointer-based adjacency-list layout (Figure 2)."""

import numpy as np
import pytest

from repro.algorithms import neighbor_query
from repro.cache import Memory
from repro.errors import InvalidParameterError
from repro.graph import from_edges, generators
from repro.graph.adjlist import (
    AdjacencyListLayout,
    neighbor_query_adjlist_traced,
)


@pytest.fixture(scope="module")
def graph():
    return generators.web_graph(
        400, pages_per_host=40, out_degree=6, seed=19
    )


class TestLayout:
    def test_chains_reproduce_neighbor_lists(self, graph):
        layout = AdjacencyListLayout(graph, order="grouped")
        for u in range(graph.num_nodes):
            assert layout.neighbors(u) == graph.out_neighbors(u).tolist()

    def test_interleaved_same_logical_content(self, graph):
        layout = AdjacencyListLayout(graph, order="interleaved", seed=3)
        for u in range(0, graph.num_nodes, 17):
            assert layout.neighbors(u) == graph.out_neighbors(u).tolist()

    def test_invalid_order(self, graph):
        with pytest.raises(InvalidParameterError):
            AdjacencyListLayout(graph, order="sideways")

    def test_empty_graph(self):
        layout = AdjacencyListLayout(from_edges([], num_nodes=3))
        assert layout.neighbors(0) == []

    def test_interleaved_deterministic_per_seed(self, graph):
        a = AdjacencyListLayout(graph, order="interleaved", seed=5)
        b = AdjacencyListLayout(graph, order="interleaved", seed=5)
        assert np.array_equal(a.heads, b.heads)
        assert np.array_equal(a.cell_next, b.cell_next)


class TestTracedQuery:
    def test_matches_csr_results(self, graph):
        layout = AdjacencyListLayout(graph, order="interleaved", seed=1)
        traced = neighbor_query_adjlist_traced(layout, Memory())
        assert np.array_equal(traced, neighbor_query(graph))

    def test_interleaving_costs_misses(self, graph):
        """The paper's Figure 2 argument, measured: a fragmented heap
        makes the same traversal miss more than a grouped one, and
        grouped misses more than CSR (which enjoys the prefetcher)."""
        from repro.algorithms import neighbor_query_traced

        memories = {}
        for label, order in (
            ("grouped", "grouped"), ("interleaved", "interleaved"),
        ):
            memory = Memory()
            neighbor_query_adjlist_traced(
                AdjacencyListLayout(graph, order=order, seed=1), memory
            )
            memories[label] = memory
        csr_memory = Memory()
        neighbor_query_traced(graph, csr_memory)
        interleaved = memories["interleaved"].cost().total_cycles
        grouped = memories["grouped"].cost().total_cycles
        csr = csr_memory.cost().total_cycles
        assert csr < grouped < interleaved
