"""Unit tests for the CSR graph core."""

import numpy as np
import pytest
from hypothesis import given

from repro.errors import GraphFormatError
from repro.graph import from_edges
from repro.graph.csr import NODE_DTYPE, OFFSET_DTYPE, CSRGraph

from tests.conftest import graph_strategy


class TestConstruction:
    def test_basic_properties(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3
        assert len(triangle) == 3

    def test_empty_graph(self):
        graph = CSRGraph(
            0,
            np.zeros(1, dtype=OFFSET_DTYPE),
            np.zeros(0, dtype=NODE_DTYPE),
        )
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_arrays_read_only(self, triangle):
        with pytest.raises(ValueError):
            triangle.offsets[0] = 5
        with pytest.raises(ValueError):
            triangle.adjacency[0] = 5

    def test_dtype_normalisation(self):
        graph = CSRGraph(
            2,
            np.array([0, 1, 2], dtype=np.int32),
            np.array([1, 0], dtype=np.int64),
        )
        assert graph.offsets.dtype == OFFSET_DTYPE
        assert graph.adjacency.dtype == NODE_DTYPE


class TestValidation:
    def test_negative_node_count(self):
        with pytest.raises(GraphFormatError, match="negative"):
            CSRGraph(-1, np.zeros(0), np.zeros(0))

    def test_wrong_offsets_length(self):
        with pytest.raises(GraphFormatError, match="length"):
            CSRGraph(3, np.array([0, 1]), np.array([1]))

    def test_offsets_must_start_at_zero(self):
        with pytest.raises(GraphFormatError, match="start at 0"):
            CSRGraph(1, np.array([1, 1]), np.zeros(1))

    def test_offsets_end_must_match_adjacency(self):
        with pytest.raises(GraphFormatError, match="end"):
            CSRGraph(1, np.array([0, 3]), np.array([0]))

    def test_offsets_must_be_monotone(self):
        with pytest.raises(GraphFormatError, match="non-decreasing"):
            CSRGraph(2, np.array([0, 2, 1]), np.array([0]))

    def test_neighbor_out_of_range(self):
        with pytest.raises(GraphFormatError, match="neighbour ids"):
            CSRGraph(2, np.array([0, 1, 1]), np.array([7]))

    def test_two_dimensional_adjacency_rejected(self):
        with pytest.raises(GraphFormatError, match="one-dimensional"):
            CSRGraph(1, np.array([0, 1]), np.array([[0]]))


class TestAdjacency:
    def test_out_neighbors_sorted(self, diamond):
        assert diamond.out_neighbors(0).tolist() == [1, 2]
        assert diamond.out_neighbors(3).tolist() == [0]

    def test_out_degree(self, diamond):
        assert diamond.out_degree(0) == 2
        assert diamond.out_degree(1) == 1
        assert diamond.out_degrees().tolist() == [2, 1, 1, 1]

    def test_has_edge(self, diamond):
        assert diamond.has_edge(0, 1)
        assert diamond.has_edge(3, 0)
        assert not diamond.has_edge(1, 0)
        assert not diamond.has_edge(0, 3)

    def test_edges_iteration(self, triangle):
        assert list(triangle.edges()) == [(0, 1), (1, 2), (2, 0)]

    def test_edge_array_matches_edges(self, diamond):
        sources, targets = diamond.edge_array()
        assert list(zip(sources.tolist(), targets.tolist())) == list(
            diamond.edges()
        )


class TestInAdjacency:
    def test_in_neighbors(self, diamond):
        assert diamond.in_neighbors(3).tolist() == [1, 2]
        assert diamond.in_neighbors(0).tolist() == [3]

    def test_in_degrees_sum_to_edges(self, small_social):
        assert small_social.in_degrees().sum() == small_social.num_edges

    def test_in_neighbors_sorted(self, small_social):
        for u in range(small_social.num_nodes):
            neighbors = small_social.in_neighbors(u)
            assert np.all(np.diff(neighbors) >= 0)

    @given(graph_strategy())
    def test_in_csr_transposes_out_csr(self, graph):
        for u, v in graph.edges():
            assert u in graph.in_neighbors(v).tolist()


class TestDerivedGraphs:
    def test_reversed_roundtrip(self, diamond):
        assert diamond.reversed().reversed() == diamond

    def test_reversed_edge_set(self, triangle):
        assert set(triangle.reversed().edges()) == {
            (1, 0), (2, 1), (0, 2)
        }

    def test_undirected_symmetric(self, diamond):
        undirected = diamond.undirected()
        for u, v in undirected.edges():
            assert undirected.has_edge(v, u)

    def test_undirected_drops_nothing_else(self, triangle):
        undirected = triangle.undirected()
        assert undirected.num_edges == 6  # each edge in both directions

    @given(graph_strategy())
    def test_undirected_contains_original_edges(self, graph):
        undirected = graph.undirected()
        for u, v in graph.edges():
            if u != v:
                assert undirected.has_edge(u, v)
                assert undirected.has_edge(v, u)


class TestEquality:
    def test_equal_graphs(self):
        a = from_edges([(0, 1), (1, 0)])
        b = from_edges([(1, 0), (0, 1)])
        assert a == b

    def test_unequal_graphs(self, triangle, diamond):
        assert triangle != diamond

    def test_non_graph_comparison(self, triangle):
        assert triangle != "not a graph"


class TestDegreeCaching:
    def test_out_degrees_cached_and_read_only(self, diamond):
        first = diamond.out_degrees()
        assert first is diamond.out_degrees()
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0] = 99

    def test_in_degrees_cached_and_read_only(self, diamond):
        first = diamond.in_degrees()
        assert first is diamond.in_degrees()
        assert not first.flags.writeable

    def test_cached_values_stay_correct(self, diamond):
        assert diamond.out_degrees().tolist() == [2, 1, 1, 1]
        assert diamond.out_degrees().tolist() == [2, 1, 1, 1]
        assert diamond.in_degrees().tolist() == [1, 1, 1, 2]
        assert int(diamond.in_degrees().sum()) == diamond.num_edges
