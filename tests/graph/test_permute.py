"""Unit and property tests for permutations and relabeling."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidPermutationError
from repro.graph import (
    compose,
    identity_permutation,
    invert_permutation,
    permutation_from_sequence,
    relabel,
    validate_permutation,
)

from tests.conftest import graph_strategy


def permutation_strategy(max_n: int = 20):
    return st.integers(1, max_n).map(
        lambda n: np.random.default_rng(n).permutation(n).astype(np.int64)
    )


class TestValidate:
    def test_identity_valid(self):
        perm = validate_permutation(identity_permutation(5), 5)
        assert perm.tolist() == [0, 1, 2, 3, 4]

    def test_wrong_length(self):
        with pytest.raises(InvalidPermutationError, match="length"):
            validate_permutation(np.array([0, 1]), 3)

    def test_out_of_range(self):
        with pytest.raises(InvalidPermutationError, match="lie in"):
            validate_permutation(np.array([0, 5]), 2)

    def test_negative(self):
        with pytest.raises(InvalidPermutationError, match="lie in"):
            validate_permutation(np.array([0, -1]), 2)

    def test_duplicate(self):
        with pytest.raises(InvalidPermutationError, match="never"):
            validate_permutation(np.array([0, 0, 2]), 3)

    def test_float_rejected(self):
        with pytest.raises(InvalidPermutationError, match="integer"):
            validate_permutation(np.array([0.0, 1.0]), 2)

    def test_empty(self):
        assert validate_permutation(np.zeros(0, dtype=np.int64), 0).size == 0


class TestInverse:
    @given(permutation_strategy())
    def test_inverse_property(self, perm):
        inverse = invert_permutation(perm)
        assert np.array_equal(inverse[perm], np.arange(perm.shape[0]))
        assert np.array_equal(perm[inverse], np.arange(perm.shape[0]))

    @given(permutation_strategy())
    def test_double_inverse_is_identity(self, perm):
        assert np.array_equal(
            invert_permutation(invert_permutation(perm)), perm
        )


class TestSequenceConversion:
    def test_sequence_to_arrangement(self):
        sequence = np.array([2, 0, 1])  # node 2 first, then 0, then 1
        perm = permutation_from_sequence(sequence)
        assert perm.tolist() == [1, 2, 0]

    @given(permutation_strategy())
    def test_roundtrip(self, sequence):
        perm = permutation_from_sequence(sequence)
        for position, node in enumerate(sequence):
            assert perm[node] == position


class TestCompose:
    @given(permutation_strategy())
    def test_identity_is_neutral(self, perm):
        identity = identity_permutation(perm.shape[0])
        assert np.array_equal(compose(perm, identity), perm)
        assert np.array_equal(compose(identity, perm), perm)

    @given(permutation_strategy())
    def test_inverse_composes_to_identity(self, perm):
        identity = identity_permutation(perm.shape[0])
        assert np.array_equal(
            compose(invert_permutation(perm), perm), identity
        )

    def test_length_mismatch(self):
        with pytest.raises(InvalidPermutationError, match="lengths"):
            compose(np.array([0, 1]), np.array([0, 1, 2]))


class TestRelabel:
    def test_simple(self, triangle):
        perm = np.array([2, 0, 1])  # 0->2, 1->0, 2->1
        relabeled = relabel(triangle, perm)
        assert set(relabeled.edges()) == {(2, 0), (0, 1), (1, 2)}

    def test_identity_preserves_graph(self, diamond):
        relabeled = relabel(
            diamond, identity_permutation(diamond.num_nodes)
        )
        assert relabeled == diamond

    def test_invalid_permutation_rejected(self, triangle):
        with pytest.raises(InvalidPermutationError):
            relabel(triangle, np.array([0, 0, 1]))

    @given(graph_strategy())
    def test_relabel_preserves_structure(self, graph):
        n = graph.num_nodes
        perm = np.random.default_rng(n).permutation(n).astype(np.int64)
        relabeled = relabel(graph, perm)
        assert relabeled.num_edges == graph.num_edges
        assert sorted(relabeled.out_degrees().tolist()) == sorted(
            graph.out_degrees().tolist()
        )
        for u, v in graph.edges():
            assert relabeled.has_edge(int(perm[u]), int(perm[v]))

    @given(graph_strategy())
    def test_relabel_roundtrip(self, graph):
        n = graph.num_nodes
        perm = np.random.default_rng(n + 1).permutation(n).astype(np.int64)
        back = relabel(relabel(graph, perm), invert_permutation(perm))
        assert back == graph
