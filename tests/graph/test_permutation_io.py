"""Tests for permutation file I/O."""

import numpy as np
import pytest

from repro.errors import GraphFormatError, InvalidPermutationError
from repro.graph.io import load_permutation, save_permutation


class TestRoundTrip:
    def test_roundtrip(self, tmp_path):
        perm = np.array([2, 0, 1, 3], dtype=np.int64)
        path = tmp_path / "perm.txt"
        save_permutation(perm, path)
        assert np.array_equal(load_permutation(path), perm)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "perm.txt"
        path.write_text("# gorder output\n1\n0\n")
        assert load_permutation(path).tolist() == [1, 0]

    def test_num_nodes_checked(self, tmp_path):
        path = tmp_path / "perm.txt"
        path.write_text("0\n1\n")
        with pytest.raises(InvalidPermutationError):
            load_permutation(path, num_nodes=5)


class TestErrors:
    def test_invalid_permutation_rejected_on_save(self, tmp_path):
        with pytest.raises(InvalidPermutationError):
            save_permutation(
                np.array([0, 0], dtype=np.int64), tmp_path / "p.txt"
            )

    def test_non_integer_line(self, tmp_path):
        path = tmp_path / "perm.txt"
        path.write_text("0\nfoo\n")
        with pytest.raises(GraphFormatError, match="perm.txt:2"):
            load_permutation(path)

    def test_duplicate_rejected_on_load(self, tmp_path):
        path = tmp_path / "perm.txt"
        path.write_text("0\n0\n")
        with pytest.raises(InvalidPermutationError):
            load_permutation(path)

    def test_cli_output_loads_back(self, tmp_path):
        from repro.cli import main

        target = tmp_path / "perm.txt"
        assert main(
            [
                "order", "--dataset", "epinion",
                "--ordering", "chdfs", "-o", str(target),
            ]
        ) == 0
        perm = load_permutation(target)
        assert perm.shape[0] == 760
