"""Tests for graph structural statistics."""

import pytest

from repro.errors import InvalidParameterError
from repro.graph import from_edges, generators
from repro.graph.stats import (
    effective_diameter,
    id_locality,
    reciprocity,
    summarize,
)


class TestReciprocity:
    def test_fully_mutual(self):
        graph = from_edges([(0, 1), (1, 0)])
        assert reciprocity(graph) == 1.0

    def test_one_way(self):
        graph = from_edges([(0, 1), (1, 2)])
        assert reciprocity(graph) == 0.0

    def test_mixed(self):
        graph = from_edges([(0, 1), (1, 0), (1, 2), (2, 0)])
        assert reciprocity(graph) == pytest.approx(0.5)

    def test_empty(self):
        assert reciprocity(from_edges([], num_nodes=3)) == 0.0

    def test_social_more_reciprocal_than_web(self):
        social = generators.social_graph(
            400, edges_per_node=6, reciprocity=0.5, seed=3
        )
        web = generators.web_graph(400, out_degree=6, seed=3)
        assert reciprocity(social) > reciprocity(web)


class TestIdLocality:
    def test_path_fully_local(self):
        graph = generators.path(10)
        assert id_locality(graph) == 1.0

    def test_radius_zero(self):
        graph = from_edges([(0, 1)])
        assert id_locality(graph, radius=0) == 0.0

    def test_negative_radius_rejected(self):
        with pytest.raises(InvalidParameterError):
            id_locality(generators.path(3), radius=-1)

    def test_empty(self):
        assert id_locality(from_edges([], num_nodes=2)) == 0.0

    def test_web_graph_local(self):
        graph = generators.web_graph(
            600, pages_per_host=30, out_degree=8, id_noise=0.0, seed=2
        )
        assert id_locality(graph, radius=30) > 0.4


class TestEffectiveDiameter:
    def test_path_percentile(self):
        graph = generators.path(11)
        value = effective_diameter(
            graph, num_sources=30, percentile=100, seed=1
        )
        assert 5 <= value <= 10

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            effective_diameter(from_edges([], num_nodes=0))

    def test_percentile_validation(self):
        with pytest.raises(InvalidParameterError):
            effective_diameter(generators.path(3), percentile=0)

    def test_deterministic(self):
        graph = generators.social_graph(200, edges_per_node=5, seed=4)
        a = effective_diameter(graph, seed=9)
        b = effective_diameter(graph, seed=9)
        assert a == b

    def test_small_world(self):
        graph = generators.social_graph(500, edges_per_node=8, seed=4)
        assert effective_diameter(graph, seed=1) < 12


class TestSummarize:
    def test_fields(self):
        graph = generators.star(5)
        summary = summarize(graph)
        assert summary.num_nodes == 6
        assert summary.num_edges == 10
        assert summary.max_out_degree == 5
        assert summary.reciprocity == 1.0

    def test_empty_graph(self):
        summary = summarize(from_edges([], num_nodes=0))
        assert summary.average_degree == 0.0
        assert summary.degree_skew == 0.0

    def test_as_row_shape(self):
        row = summarize(generators.ring(5)).as_row()
        assert len(row) == 9
        assert row[1] == 5
