"""Unit tests for graph I/O (text edge lists and npz archives)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import GraphFormatError
from repro.graph import (
    load_npz,
    read_edge_list,
    save_npz,
    write_edge_list,
)

from tests.conftest import graph_strategy


class TestEdgeList:
    def test_roundtrip(self, tmp_path, diamond):
        path = tmp_path / "graph.txt"
        write_edge_list(diamond, path)
        loaded = read_edge_list(path)
        assert loaded == diamond

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text(
            "# comment\n% konect style\n// slashes\n\n0 1\n1 2\n"
        )
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_extra_fields_ignored(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1 1234567890\n1 2 99 extra\n")
        graph = read_edge_list(path)
        assert set(graph.edges()) == {(0, 1), (1, 2)}

    def test_single_field_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n42\n")
        with pytest.raises(GraphFormatError, match="bad.txt:2"):
            read_edge_list(path)

    def test_non_integer_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\nfoo bar\n")
        with pytest.raises(GraphFormatError, match="bad.txt:2"):
            read_edge_list(path)

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1\n")
        assert read_edge_list(path).name == "mygraph"

    def test_explicit_num_nodes(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        graph = read_edge_list(path, num_nodes=10)
        assert graph.num_nodes == 10

    def test_tab_separated(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\t1\n1\t2\n")
        assert read_edge_list(path).num_edges == 2

    @settings(max_examples=20)
    @given(graph_strategy())
    def test_roundtrip_property(self, tmp_path_factory, graph):
        path = tmp_path_factory.mktemp("io") / "g.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path, num_nodes=graph.num_nodes)
        assert loaded == graph


class TestNpz:
    def test_roundtrip(self, tmp_path, small_social):
        path = tmp_path / "graph.npz"
        save_npz(small_social, path)
        loaded = load_npz(path)
        assert loaded == small_social
        assert loaded.name == small_social.name

    def test_wrong_archive_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(GraphFormatError, match="not a repro graph"):
            load_npz(path)

    def test_write_is_atomic_no_tmp_left(self, tmp_path, small_social):
        path = tmp_path / "graph.npz"
        save_npz(small_social, path)
        assert [p.name for p in tmp_path.iterdir()] == ["graph.npz"]

    def test_suffix_appended_like_numpy(self, tmp_path, small_social):
        save_npz(small_social, tmp_path / "bare")
        assert (tmp_path / "bare.npz").exists()
        assert load_npz(tmp_path / "bare.npz") == small_social

    def test_truncated_archive_clean_error(self, tmp_path,
                                           small_social):
        path = tmp_path / "graph.npz"
        save_npz(small_social, path)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(GraphFormatError, match="cannot read"):
            load_npz(path)

    def test_garbage_archive_clean_error(self, tmp_path):
        path = tmp_path / "graph.npz"
        path.write_bytes(b"not a zip archive at all")
        with pytest.raises(GraphFormatError, match="cannot read"):
            load_npz(path)

    def test_missing_file_clean_error(self, tmp_path):
        with pytest.raises(GraphFormatError, match="cannot read"):
            load_npz(tmp_path / "absent.npz")


class TestGzip:
    def test_gz_edge_list(self, tmp_path):
        import gzip

        path = tmp_path / "graph.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("# gzipped\n0 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2
