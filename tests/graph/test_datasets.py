"""Unit tests for the dataset registry."""

import pytest

from repro.errors import UnknownDatasetError
from repro.graph import datasets


class TestRegistry:
    def test_nine_datasets(self):
        assert len(datasets.DATASET_NAMES) == 9

    def test_order_matches_replication_table(self):
        assert datasets.DATASET_NAMES[0] == "epinion"
        assert datasets.DATASET_NAMES[-1] == "sdarc"

    def test_categories(self):
        webs = {"wiki", "pldarc", "sdarc"}
        for name in datasets.DATASET_NAMES:
            expected = "web" if name in webs else "social"
            assert datasets.spec(name).category == expected

    def test_unknown_dataset(self):
        with pytest.raises(UnknownDatasetError, match="nosuch"):
            datasets.spec("nosuch")
        with pytest.raises(UnknownDatasetError):
            datasets.load("nosuch")

    def test_describe(self):
        text = datasets.spec("pokec").describe()
        assert "pokec" in text
        assert "social" in text

    def test_quick_subset_is_registered(self):
        for name in datasets.QUICK_DATASETS:
            assert name in datasets.REGISTRY


class TestAnalogues:
    def test_sizes_monotone_in_edges(self):
        edges = [
            datasets.load(name).num_edges
            for name in datasets.DATASET_NAMES
        ]
        assert edges == sorted(edges)

    def test_sizes_monotone_in_nodes(self):
        nodes = [
            datasets.load(name).num_nodes
            for name in datasets.DATASET_NAMES
        ]
        assert nodes == sorted(nodes)

    def test_load_memoised(self):
        assert datasets.load("epinion") is datasets.load("epinion")

    def test_epinion_is_smallest_and_quick(self):
        graph = datasets.load("epinion")
        assert graph.num_nodes < 1000

    def test_graph_names_match_registry(self):
        for name in datasets.DATASET_NAMES:
            assert datasets.load(name).name == name

    def test_paper_sizes_recorded(self):
        spec = datasets.spec("sdarc")
        assert spec.paper_nodes == pytest.approx(94.9)
        assert spec.paper_edges == pytest.approx(1940.0)
