"""Unit tests for edge-list to CSR construction."""

import numpy as np
import pytest
from hypothesis import given

from repro.errors import GraphFormatError
from repro.graph import empty_graph, from_arrays, from_edges

from tests.conftest import edge_list_strategy


class TestFromEdges:
    def test_simple(self):
        graph = from_edges([(0, 1), (1, 2)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_num_nodes_inferred_from_max_id(self):
        graph = from_edges([(0, 9)])
        assert graph.num_nodes == 10

    def test_explicit_num_nodes_adds_isolated(self):
        graph = from_edges([(0, 1)], num_nodes=5)
        assert graph.num_nodes == 5
        assert graph.out_degree(4) == 0

    def test_explicit_num_nodes_too_small(self):
        with pytest.raises(GraphFormatError, match="references node"):
            from_edges([(0, 9)], num_nodes=5)

    def test_duplicates_merged(self):
        graph = from_edges([(0, 1), (0, 1), (0, 1)])
        assert graph.num_edges == 1

    def test_self_loops_dropped_by_default(self):
        graph = from_edges([(0, 0), (0, 1)])
        assert graph.num_edges == 1
        assert not graph.has_edge(0, 0)

    def test_self_loops_kept_on_request(self):
        graph = from_edges([(0, 0), (0, 1)], keep_self_loops=True)
        assert graph.num_edges == 2
        assert graph.has_edge(0, 0)

    def test_neighbor_lists_sorted(self):
        graph = from_edges([(0, 3), (0, 1), (0, 2)])
        assert graph.out_neighbors(0).tolist() == [1, 2, 3]

    def test_negative_ids_rejected(self):
        with pytest.raises(GraphFormatError, match="negative"):
            from_edges([(0, -1)])

    def test_empty_edge_list(self):
        graph = from_edges([])
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_empty_with_num_nodes(self):
        graph = from_edges([], num_nodes=4)
        assert graph.num_nodes == 4

    def test_numpy_array_input(self):
        array = np.array([[0, 1], [1, 2]])
        graph = from_edges(array)
        assert graph.num_edges == 2

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphFormatError, match="shape"):
            from_edges(np.zeros((3, 3), dtype=np.int64))

    def test_float_array_rejected(self):
        with pytest.raises(GraphFormatError, match="integer"):
            from_edges(np.zeros((2, 2), dtype=np.float64))

    @given(edge_list_strategy())
    def test_edges_preserved_up_to_dedup(self, pair):
        num_nodes, edges = pair
        graph = from_edges(edges, num_nodes=num_nodes)
        expected = {(u, v) for u, v in edges if u != v}
        assert set(graph.edges()) == expected


class TestFromArrays:
    def test_matches_from_edges(self):
        a = from_arrays(np.array([0, 1]), np.array([1, 2]))
        b = from_edges([(0, 1), (1, 2)])
        assert a == b

    def test_shape_mismatch(self):
        with pytest.raises(GraphFormatError, match="equal"):
            from_arrays(np.array([0, 1]), np.array([1]))

    def test_two_dimensional_rejected(self):
        with pytest.raises(GraphFormatError, match="one-dimensional"):
            from_arrays(np.zeros((2, 2)), np.zeros((2, 2)))


class TestEmptyGraph:
    def test_empty(self):
        graph = empty_graph(7)
        assert graph.num_nodes == 7
        assert graph.num_edges == 0
        assert graph.out_degrees().tolist() == [0] * 7
