"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph import generators


class TestDeterministicGraphs:
    def test_ring(self):
        graph = generators.ring(5)
        assert graph.num_nodes == 5
        assert graph.num_edges == 5
        assert graph.has_edge(4, 0)

    def test_ring_single_node(self):
        graph = generators.ring(1)
        # The single self-loop is dropped by the builder.
        assert graph.num_nodes == 1
        assert graph.num_edges == 0

    def test_path(self):
        graph = generators.path(4)
        assert graph.num_edges == 3
        assert not graph.has_edge(3, 0)

    def test_star(self):
        graph = generators.star(6)
        assert graph.num_nodes == 7
        assert graph.out_degree(0) == 6
        assert graph.in_degree(0) == 6

    def test_star_no_leaves(self):
        graph = generators.star(0)
        assert graph.num_nodes == 1
        assert graph.num_edges == 0

    def test_complete(self):
        graph = generators.complete(4)
        assert graph.num_edges == 12
        assert not graph.has_edge(2, 2)

    def test_grid(self):
        graph = generators.grid(3, 4)
        assert graph.num_nodes == 12
        # 2 * (rows*(cols-1) + (rows-1)*cols) directed edges
        assert graph.num_edges == 2 * (3 * 3 + 2 * 4)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert graph.has_edge(0, 4)

    def test_binary_tree(self):
        graph = generators.binary_tree(3)
        assert graph.num_nodes == 15
        assert graph.num_edges == 14
        assert graph.out_degree(0) == 2
        assert graph.out_degree(14) == 0

    @pytest.mark.parametrize(
        "factory, args",
        [
            (generators.ring, (0,)),
            (generators.path, (0,)),
            (generators.star, (-1,)),
            (generators.complete, (0,)),
            (generators.grid, (0, 3)),
            (generators.binary_tree, (-1,)),
        ],
    )
    def test_invalid_parameters(self, factory, args):
        with pytest.raises(InvalidParameterError):
            factory(*args)


class TestErdosRenyi:
    def test_size(self):
        graph = generators.erdos_renyi(100, 500, seed=1)
        assert graph.num_nodes == 100
        # Dedup and self-loop removal shave a few edges off.
        assert 400 <= graph.num_edges <= 500

    def test_deterministic(self):
        a = generators.erdos_renyi(50, 200, seed=3)
        b = generators.erdos_renyi(50, 200, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = generators.erdos_renyi(50, 200, seed=3)
        b = generators.erdos_renyi(50, 200, seed=4)
        assert a != b

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            generators.erdos_renyi(0, 10)
        with pytest.raises(InvalidParameterError):
            generators.erdos_renyi(10, -1)


class TestSocialGraph:
    def test_size_and_determinism(self):
        a = generators.social_graph(150, edges_per_node=6, seed=5)
        b = generators.social_graph(150, edges_per_node=6, seed=5)
        assert a == b
        assert a.num_nodes == 150
        assert a.num_edges > 150 * 4  # roughly edges_per_node * n

    def test_skewed_in_degrees(self):
        graph = generators.social_graph(400, edges_per_node=8, seed=5)
        degrees = graph.in_degrees()
        assert degrees.max() > 4 * degrees.mean()

    def test_original_order_has_locality(self):
        graph = generators.social_graph(400, edges_per_node=8, seed=5)
        sources, targets = graph.edge_array()
        gaps = np.abs(sources - targets)
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(graph.num_nodes)
        random_gaps = np.abs(shuffled[sources] - shuffled[targets])
        assert np.median(gaps) < np.median(random_gaps)

    def test_reciprocity_increases_mutual_edges(self):
        low = generators.social_graph(
            200, edges_per_node=6, reciprocity=0.0, seed=5
        )
        high = generators.social_graph(
            200, edges_per_node=6, reciprocity=0.9, seed=5
        )

        def mutual(graph):
            return sum(
                1 for u, v in graph.edges() if graph.has_edge(v, u)
            )

        assert mutual(high) > mutual(low)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1},
            {"num_nodes": 10, "edges_per_node": 0},
            {"num_nodes": 10, "reciprocity": 1.5},
            {"num_nodes": 10, "community_bias": -0.1},
            {"num_nodes": 10, "uniform_mix": 2.0},
            {"num_nodes": 10, "id_noise": -0.5},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(InvalidParameterError):
            generators.social_graph(**kwargs)


class TestWebGraph:
    def test_size_and_determinism(self):
        a = generators.web_graph(300, out_degree=8, seed=5)
        b = generators.web_graph(300, out_degree=8, seed=5)
        assert a == b
        assert a.num_nodes == 300

    def test_host_block_locality(self):
        graph = generators.web_graph(
            600, pages_per_host=30, out_degree=10, id_noise=0.0, seed=5
        )
        sources, targets = graph.edge_array()
        same_host = (sources // 30) == (targets // 30)
        # intra_host default 0.75, so over half of surviving edges
        # should stay inside the host block.
        assert same_host.mean() > 0.5

    def test_id_noise_degrades_locality(self):
        clean = generators.web_graph(600, id_noise=0.0, seed=5)
        noisy = generators.web_graph(600, id_noise=0.5, seed=5)

        def close_fraction(graph):
            sources, targets = graph.edge_array()
            return (np.abs(sources - targets) <= 16).mean()

        assert close_fraction(noisy) < close_fraction(clean)

    def test_skewed_in_degrees(self):
        graph = generators.web_graph(600, out_degree=10, seed=5)
        degrees = graph.in_degrees()
        assert degrees.max() > 4 * degrees.mean()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1},
            {"num_nodes": 100, "pages_per_host": 1},
            {"num_nodes": 100, "out_degree": 0},
            {"num_nodes": 100, "intra_host_fraction": 1.5},
            {"num_nodes": 100, "intra_host_fraction": 0.9,
             "nearby_fraction": 0.5},
            {"num_nodes": 100, "id_noise": 1.5},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(InvalidParameterError):
            generators.web_graph(**kwargs)


class TestRmat:
    def test_size(self):
        graph = generators.rmat(8, edge_factor=8, seed=5)
        assert graph.num_nodes == 256
        assert graph.num_edges > 256  # heavy dedup but plenty left

    def test_deterministic(self):
        assert generators.rmat(6, seed=9) == generators.rmat(6, seed=9)

    def test_skew(self):
        graph = generators.rmat(10, edge_factor=8, seed=5)
        degrees = graph.out_degrees()
        assert degrees.max() > 5 * max(degrees.mean(), 1)

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            generators.rmat(0)
        with pytest.raises(InvalidParameterError):
            generators.rmat(4, a=0.9, b=0.9, c=0.9)


class TestGeneratorRealism:
    """The realism properties the experiment design leans on."""

    def test_social_has_more_reciprocity_than_web(self):
        from repro.graph.stats import reciprocity

        social = generators.social_graph(
            300, edges_per_node=6, reciprocity=0.4, seed=2
        )
        web = generators.web_graph(300, out_degree=6, seed=2)
        assert reciprocity(social) > reciprocity(web) + 0.1

    def test_web_hub_hosts_attract_global_links(self):
        graph = generators.web_graph(
            1000, pages_per_host=50, out_degree=10, seed=4
        )
        degrees = graph.in_degrees()
        # Top 5% of pages absorb a disproportionate share of links.
        top = np.sort(degrees)[::-1][: graph.num_nodes // 20]
        assert top.sum() > 0.15 * graph.num_edges

    def test_rmat_more_skewed_than_erdos_renyi(self):
        rmat = generators.rmat(9, edge_factor=8, seed=3)
        uniform = generators.erdos_renyi(
            rmat.num_nodes, rmat.num_edges, seed=3
        )
        assert (
            rmat.in_degrees().max() > 2 * uniform.in_degrees().max()
        )

    def test_id_noise_zero_keeps_social_locality_high(self):
        clean = generators.social_graph(
            400, edges_per_node=6, id_noise=0.0, seed=2
        )
        noisy = generators.social_graph(
            400, edges_per_node=6, id_noise=0.6, seed=2
        )
        from repro.graph.stats import id_locality

        assert id_locality(clean, radius=64) > id_locality(
            noisy, radius=64
        )
