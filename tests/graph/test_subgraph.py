"""Tests for induced subgraph extraction."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import InvalidParameterError
from repro.graph import from_edges, induced_subgraph

from tests.conftest import graph_strategy


class TestInducedSubgraph:
    def test_simple(self):
        graph = from_edges([(0, 1), (1, 2), (2, 0), (1, 3)])
        sub, local = induced_subgraph(graph, np.array([0, 1, 2]))
        assert sub.num_nodes == 3
        assert set(sub.edges()) == {(0, 1), (1, 2), (2, 0)}
        assert local[3] == -1

    def test_node_order_defines_local_ids(self):
        graph = from_edges([(0, 1)])
        sub, local = induced_subgraph(graph, np.array([1, 0]))
        # host 1 -> local 0, host 0 -> local 1; edge becomes 1 -> 0.
        assert set(sub.edges()) == {(1, 0)}
        assert local[1] == 0

    def test_empty_selection(self):
        graph = from_edges([(0, 1)])
        sub, _ = induced_subgraph(graph, np.array([], dtype=np.int64))
        assert sub.num_nodes == 0
        assert sub.num_edges == 0

    def test_duplicate_nodes_rejected(self):
        graph = from_edges([(0, 1)])
        with pytest.raises(InvalidParameterError, match="distinct"):
            induced_subgraph(graph, np.array([0, 0]))

    def test_out_of_range_rejected(self):
        graph = from_edges([(0, 1)])
        with pytest.raises(InvalidParameterError, match="valid ids"):
            induced_subgraph(graph, np.array([5]))

    def test_bad_shape_rejected(self):
        graph = from_edges([(0, 1)])
        with pytest.raises(InvalidParameterError, match="one-dim"):
            induced_subgraph(graph, np.array([[0]]))

    @settings(max_examples=25, deadline=None)
    @given(graph_strategy())
    def test_edge_set_property(self, graph):
        if graph.num_nodes < 2:
            return
        keep = np.arange(0, graph.num_nodes, 2, dtype=np.int64)
        sub, local = induced_subgraph(graph, keep)
        expected = {
            (int(local[u]), int(local[v]))
            for u, v in graph.edges()
            if local[u] >= 0 and local[v] >= 0
        }
        assert set(sub.edges()) == expected
