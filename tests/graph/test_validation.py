"""Tests for deep graph validation."""

import numpy as np

from repro.graph import from_edges, generators
from repro.graph.csr import CSRGraph
from repro.graph.validation import validate_graph


class TestCleanGraphs:
    def test_builder_output_is_clean(self):
        report = validate_graph(
            generators.social_graph(80, edges_per_node=4, seed=1)
        )
        assert report.is_clean
        assert report.issues() == []

    def test_counts(self):
        graph = from_edges([(0, 1), (1, 2)], num_nodes=4)
        report = validate_graph(graph)
        assert report.num_nodes == 4
        assert report.num_edges == 2
        assert report.num_isolated_nodes == 1  # node 3
        assert report.num_sink_nodes == 2  # nodes 2 and 3
        assert report.num_source_nodes == 2  # nodes 0 and 3


class TestDirtyGraphs:
    def test_self_loops_detected(self):
        graph = from_edges([(0, 0), (0, 1)], keep_self_loops=True)
        report = validate_graph(graph)
        assert report.num_self_loops == 1
        assert not report.is_clean
        assert any("self-loop" in issue for issue in report.issues())

    def test_duplicates_detected(self):
        # Hand-built CSR bypassing the deduplicating builder.
        graph = CSRGraph(
            2,
            np.array([0, 2, 2], dtype=np.int64),
            np.array([1, 1], dtype=np.int32),
        )
        report = validate_graph(graph)
        assert report.num_duplicate_edges == 1
        assert not report.is_clean

    def test_unsorted_detected(self):
        graph = CSRGraph(
            3,
            np.array([0, 2, 2, 2], dtype=np.int64),
            np.array([2, 1], dtype=np.int32),
        )
        report = validate_graph(graph)
        assert not report.is_sorted
        assert any("sorted" in issue for issue in report.issues())

    def test_isolated_reported_but_not_dirty(self):
        graph = from_edges([(0, 1)], num_nodes=3)
        report = validate_graph(graph)
        assert report.num_isolated_nodes == 1
        assert report.is_clean  # isolated nodes are legal
        assert any("isolated" in issue for issue in report.issues())
