"""Adversarial and boundary inputs across the public API."""

import numpy as np
import pytest

from repro.algorithms import (
    breadth_first_search,
    core_decomposition,
    dominating_set,
    pagerank,
    strongly_connected_components,
)
from repro.cache import CacheHierarchy, CacheLevel, Memory
from repro.graph import from_edges, generators, relabel
from repro.ordering import (
    REGISTRY,
    compute_ordering,
    gorder_order,
    gorder_score,
)

from tests.conftest import assert_valid_permutation


class TestWindowExtremes:
    def test_window_larger_than_graph(self):
        graph = from_edges([(0, 1), (1, 2), (2, 0)])
        perm = gorder_order(graph, window=100)
        assert_valid_permutation(perm, 3)

    def test_window_equal_to_n(self):
        graph = generators.ring(6)
        perm = gorder_order(graph, window=6)
        assert_valid_permutation(perm, 6)

    def test_score_with_giant_window_counts_all_pairs(self):
        graph = from_edges([(0, 1), (1, 2)])
        full = gorder_score(graph, np.array([0, 1, 2]), window=10)
        # All 3 pairs in window; pairs (0,1) and (1,2) score 1 each.
        assert full == 2


class TestDegenerateGraphs:
    def test_two_node_graph_all_orderings(self):
        graph = from_edges([(0, 1)])
        for name in REGISTRY:
            assert_valid_permutation(
                compute_ordering(name, graph, seed=1), 2
            )

    def test_self_loop_only_graph(self):
        graph = from_edges([(0, 0)], keep_self_loops=True)
        assert breadth_first_search(graph).tolist() == [0]
        assert strongly_connected_components(graph).tolist() == [0]
        assert pagerank(graph, iterations=5).sum() == pytest.approx(1)

    def test_star_with_huge_hub(self):
        graph = generators.star(500)
        assert dominating_set(graph).tolist() == [0]
        core = core_decomposition(graph)
        assert core.max() == 1

    def test_complete_graph_orderings(self):
        graph = generators.complete(12)
        for name in ("gorder", "rcm", "slashburn", "ldg"):
            assert_valid_permutation(
                compute_ordering(name, graph, seed=1), 12
            )

    def test_long_path_stack_safety(self):
        """Deep recursion shapes must not hit the recursion limit
        (all traversals are iterative)."""
        graph = generators.path(30000)
        preorder = compute_ordering("chdfs", graph)
        assert_valid_permutation(preorder, 30000)
        components = strongly_connected_components(graph)
        assert components.shape == (30000,)


class TestLargeIds:
    def test_sparse_high_ids(self):
        graph = from_edges([(0, 99999)])
        assert graph.num_nodes == 100000
        assert graph.num_edges == 1

    def test_relabel_huge_sparse(self):
        graph = from_edges([(0, 9999)], num_nodes=10000)
        rng = np.random.default_rng(1)
        perm = rng.permutation(10000).astype(np.int64)
        relabeled = relabel(graph, perm)
        assert relabeled.has_edge(int(perm[0]), int(perm[9999]))


class TestCacheExtremes:
    def test_single_line_cache(self):
        hierarchy = CacheHierarchy([CacheLevel(64, 64, 1, "L1")])
        memory = Memory(hierarchy)
        array = memory.array("a", 32, 4)
        array.touch(0)
        array.touch(31)  # different line: evicts, then misses back
        array.touch(0)
        assert memory.level_counts[0] == 3  # everything misses

    def test_zero_cost_run(self):
        memory = Memory()
        assert memory.cost().total_cycles == 0
        assert memory.stats().l1_refs == 0

    def test_enormous_array_indexing(self):
        memory = Memory()
        array = memory.array("big", 10**9, 8)
        array.touch(10**9 - 1)  # must not overflow or wrap
        assert memory.total_refs == 1
