"""Weighted Bellman-Ford tests (the reason the paper picked BF)."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import INFINITY, shortest_paths
from repro.errors import InvalidParameterError
from repro.graph import from_edges, generators


def weighted_networkx(graph, weights):
    result = nx.DiGraph()
    result.add_nodes_from(range(graph.num_nodes))
    position = 0
    for u in range(graph.num_nodes):
        for v in graph.out_neighbors(u).tolist():
            result.add_edge(u, v, weight=int(weights[position]))
            position += 1
    return result


@pytest.fixture(scope="module")
def graph():
    return generators.social_graph(90, edges_per_node=4, seed=44)


class TestPositiveWeights:
    def test_matches_dijkstra(self, graph):
        rng = np.random.default_rng(3)
        weights = rng.integers(1, 20, size=graph.num_edges)
        ours = shortest_paths(graph, 0, weights=weights)
        lengths = nx.single_source_dijkstra_path_length(
            weighted_networkx(graph, weights), 0
        )
        for node in range(graph.num_nodes):
            if node in lengths:
                assert ours[node] == lengths[node]
            else:
                assert ours[node] == INFINITY

    def test_unit_weights_match_unweighted(self, graph):
        unit = np.ones(graph.num_edges, dtype=np.int64)
        assert np.array_equal(
            shortest_paths(graph, 5, weights=unit),
            shortest_paths(graph, 5),
        )

    def test_zero_weight_edges(self):
        graph = from_edges([(0, 1), (1, 2)])
        weights = np.array([0, 5], dtype=np.int64)
        distance = shortest_paths(graph, 0, weights=weights)
        assert distance.tolist() == [0, 0, 5]


class TestNegativeWeights:
    def test_negative_edge_shortcut(self):
        # 0 -> 1 (10), 0 -> 2 (1), 2 -> 1 (-5): best 0->1 is -4.
        graph = from_edges([(0, 1), (0, 2), (2, 1)])
        weights = np.array([10, 1, -5], dtype=np.int64)
        distance = shortest_paths(graph, 0, weights=weights)
        assert distance[1] == -4

    def test_matches_networkx_bellman_ford(self):
        graph = from_edges(
            [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)]
        )
        weights = np.array([4, -2, 5, 3, 10], dtype=np.int64)
        ours = shortest_paths(graph, 0, weights=weights)
        lengths = nx.single_source_bellman_ford_path_length(
            weighted_networkx(graph, weights), 0
        )
        for node, value in lengths.items():
            assert ours[node] == value

    def test_negative_cycle_detected(self):
        graph = from_edges([(0, 1), (1, 2), (2, 0)])
        weights = np.array([-1, -1, -1], dtype=np.int64)
        with pytest.raises(InvalidParameterError, match="negative cycle"):
            shortest_paths(graph, 0, weights=weights)

    def test_unreachable_negative_cycle_is_fine(self):
        # The cycle 2 -> 3 -> 2 is negative but unreachable from 0.
        graph = from_edges([(0, 1), (2, 3), (3, 2)])
        weights = np.array([1, -4, 1], dtype=np.int64)
        distance = shortest_paths(graph, 0, weights=weights)
        assert distance[1] == 1
        assert distance[2] == INFINITY


class TestValidation:
    def test_wrong_length(self, graph):
        with pytest.raises(InvalidParameterError, match="per edge"):
            shortest_paths(graph, 0, weights=np.array([1, 2]))

    def test_float_weights_rejected(self, graph):
        weights = np.ones(graph.num_edges, dtype=np.float64)
        with pytest.raises(InvalidParameterError, match="integers"):
            shortest_paths(graph, 0, weights=weights)
