"""Property-based differential tests: our algorithms vs networkx.

Hypothesis generates arbitrary small directed graphs; every benchmark
algorithm with an independent networkx counterpart must agree on all
of them — including degenerate shapes (self-loop-free multi-edges
already collapsed, isolated nodes, single nodes, DAGs, cycles).
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings

from repro.algorithms import (
    INFINITY,
    breadth_first_search,
    core_decomposition,
    diameter,
    dominating_set,
    neighbor_query,
    pagerank,
    shortest_paths,
    strongly_connected_components,
)

from tests.conftest import graph_strategy

GRAPHS = graph_strategy(max_nodes=10, max_edges=30)


def to_networkx(graph):
    result = nx.DiGraph()
    result.add_nodes_from(range(graph.num_nodes))
    result.add_edges_from(graph.edges())
    return result


class TestDifferential:
    @settings(max_examples=40, deadline=None)
    @given(GRAPHS)
    def test_scc_count(self, graph):
        ours = strongly_connected_components(graph)
        theirs = nx.number_strongly_connected_components(
            to_networkx(graph)
        )
        assert int(ours.max()) + 1 == theirs if graph.num_nodes else True

    @settings(max_examples=40, deadline=None)
    @given(GRAPHS)
    def test_scc_partition(self, graph):
        ours = strongly_connected_components(graph)
        for group in nx.strongly_connected_components(
            to_networkx(graph)
        ):
            assert len({int(ours[u]) for u in group}) == 1

    @settings(max_examples=40, deadline=None)
    @given(GRAPHS)
    def test_sp_distances(self, graph):
        if graph.num_nodes == 0:
            return
        ours = shortest_paths(graph, 0)
        lengths = nx.single_source_shortest_path_length(
            to_networkx(graph), 0
        )
        for node in range(graph.num_nodes):
            expected = lengths.get(node)
            if expected is None:
                assert ours[node] == INFINITY
            else:
                assert ours[node] == expected

    @settings(max_examples=40, deadline=None)
    @given(GRAPHS)
    def test_kcore(self, graph):
        if graph.num_nodes == 0:
            return
        undirected = to_networkx(graph).to_undirected()
        undirected.remove_edges_from(nx.selfloop_edges(undirected))
        expected = nx.core_number(undirected)
        ours = core_decomposition(graph)
        for node in range(graph.num_nodes):
            assert ours[node] == expected[node]

    @settings(max_examples=25, deadline=None)
    @given(GRAPHS)
    def test_pagerank(self, graph):
        if graph.num_nodes == 0:
            return
        ours = pagerank(graph, iterations=120)
        theirs = nx.pagerank(
            to_networkx(graph), alpha=0.85, max_iter=300, tol=1e-13
        )
        for node in range(graph.num_nodes):
            assert ours[node] == pytest.approx(
                theirs[node], abs=1e-6
            )

    @settings(max_examples=40, deadline=None)
    @given(GRAPHS)
    def test_bfs_visits_everything_once(self, graph):
        distance = breadth_first_search(graph)
        assert (distance >= 0).all()

    @settings(max_examples=40, deadline=None)
    @given(GRAPHS)
    def test_dominating_set_covers(self, graph):
        if graph.num_nodes == 0:
            return
        chosen = dominating_set(graph)
        covered = np.zeros(graph.num_nodes, dtype=bool)
        covered[chosen] = True
        for u in chosen:
            covered[graph.out_neighbors(int(u))] = True
        assert covered.all()

    @settings(max_examples=40, deadline=None)
    @given(GRAPHS)
    def test_nq_definition(self, graph):
        q = neighbor_query(graph)
        degrees = graph.out_degrees()
        for u in range(graph.num_nodes):
            expected = int(
                degrees[graph.out_neighbors(u)].sum()
            )
            assert q[u] == expected

    @settings(max_examples=25, deadline=None)
    @given(GRAPHS)
    def test_diameter_is_a_real_eccentricity(self, graph):
        if graph.num_nodes == 0:
            return
        estimate = diameter(graph, sources=[0])
        distance = shortest_paths(graph, 0)
        finite = distance[distance != INFINITY]
        assert estimate == int(finite.max())
