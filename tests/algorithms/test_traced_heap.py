"""Property tests for the traced binary heap."""

import heapq

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms import TracedBinaryHeap
from repro.cache import Memory


class TestBasics:
    def test_push_pop_order(self):
        heap = TracedBinaryHeap(None)
        for key in (5, 1, 3):
            heap.push(key, key * 10)
        assert heap.pop() == (1, 10)
        assert heap.pop() == (3, 30)
        assert heap.pop() == (5, 50)

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            TracedBinaryHeap(None).pop()

    def test_len(self):
        heap = TracedBinaryHeap(None)
        heap.push(1, 1)
        heap.push(2, 2)
        assert len(heap) == 2
        heap.pop()
        assert len(heap) == 1

    def test_declared_heap_touches_memory(self):
        memory = Memory()
        heap = TracedBinaryHeap.declare(memory, "heap", 64)
        heap.push(3, 1)
        heap.push(1, 2)
        heap.pop()
        assert memory.total_refs > 0


class TestAgainstHeapq:
    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(0, 100)),
            max_size=200,
        )
    )
    def test_same_pop_sequence(self, items):
        """Interleave pushes and pops; compare against heapq."""
        ours = TracedBinaryHeap(None)
        reference: list[tuple[int, int]] = []
        for index, item in enumerate(items):
            ours.push(*item)
            heapq.heappush(reference, item)
            if index % 3 == 2:
                assert ours.pop() == heapq.heappop(reference)
        while reference:
            assert ours.pop() == heapq.heappop(reference)
        assert len(ours) == 0
