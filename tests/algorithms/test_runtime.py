"""The frontier/bucket runtime: components and counter-identity.

Two layers of guarantees:

* component tests pin the building blocks (``claim_first``'s
  dense/sparse agreement, ``interleave_fields``'s exact stream
  assembly, ``BucketQueue``'s fusion contract, ``run_field``'s
  touch_run equivalence);
* parity tests run every runtime-ported algorithm against its scalar
  oracle and require identical results **and** identical per-level
  cache counters on both cache backends — the runtime's contract is
  reproducing the scalar touch sequence reference-for-reference, not
  approximating it.
"""

import numpy as np
import pytest

from repro.algorithms import ALGO_BACKENDS, REGISTRY, traced_fn
from repro.algorithms.runtime import (
    BucketQueue,
    Frontier,
    TraceEmitter,
    claim_first,
    interleave_fields,
    run_field,
    segment_sums,
)
from repro.cache import CacheHierarchy, CacheLevel, Memory
from repro.errors import InvalidParameterError
from repro.graph import from_edges, generators


def tiny_hierarchy():
    return CacheHierarchy(
        [
            CacheLevel(2 * 64, 64, 2, "L1"),
            CacheLevel(4 * 64, 64, 4, "L2"),
            CacheLevel(8 * 64, 64, 8, "L3"),
        ]
    )


# ---------------------------------------------------------------------
# Components
# ---------------------------------------------------------------------
class TestSegmentSums:
    def test_basic(self):
        values = np.asarray([1, 2, 3, 4, 5, 6])
        lengths = np.asarray([2, 0, 3, 1])
        assert segment_sums(values, lengths).tolist() == [3, 0, 12, 6]

    def test_empty(self):
        out = segment_sums(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        assert out.shape == (0,)


class TestInterleaveFields:
    def test_interleaves_within_segments(self):
        # Two segments; field A contributes 1 line per segment, field
        # B contributes [2, 1] lines.  Within each segment the fields
        # appear in field order: a0 b0 b1 | a1 b2.
        field_a = (
            np.asarray([1, 1]),
            np.asarray([10, 11]),
            None,
        )
        field_b = (
            np.asarray([2, 1]),
            np.asarray([20, 21, 22]),
            np.asarray([True, False, True]),
        )
        lines, demand = interleave_fields([field_a, field_b])
        assert lines.tolist() == [10, 20, 21, 11, 22]
        assert demand.tolist() == [True, True, False, True, True]

    def test_empty_segments_are_skipped(self):
        field = (
            np.asarray([0, 2, 0]),
            np.asarray([7, 8]),
            None,
        )
        lines, demand = interleave_fields([field])
        assert lines.tolist() == [7, 8]
        assert demand.all()


class TestRunField:
    def test_matches_touch_runs(self):
        memory = Memory(tiny_hierarchy())
        array = memory.array("a", 64, 8)
        starts = np.asarray([0, 16, 3, 40])
        lengths = np.asarray([3, 8, 0, 2])
        field = run_field(array, starts, lengths)
        # Line-for-line what touch_runs emits, zero-length runs skipped.
        scalar = Memory(tiny_hierarchy())
        scalar_array = scalar.array("a", 64, 8)
        scalar_array.touch_runs(starts, lengths)
        batched = Memory(tiny_hierarchy())
        batched.array("a", 64, 8)
        batched.touch_block(
            field.lines, field.demand, field.extra_l1, field.prefetched
        )
        assert batched.level_counts == scalar.level_counts
        assert batched.total_refs == scalar.total_refs
        assert batched.prefetched_refs == scalar.prefetched_refs

    def test_per_segment_lengths_cover_empty_runs(self):
        memory = Memory(tiny_hierarchy())
        array = memory.array("a", 64, 8)
        field = run_field(
            array, np.asarray([0, 0, 32]), np.asarray([2, 0, 1])
        )
        assert field.lengths.shape == (3,)
        assert field.lengths[1] == 0
        # First line of each live run is demand, the rest prefetched.
        assert field.demand[0]
        assert int(field.prefetched) == int(
            field.lines.shape[0] - (field.lengths > 0).sum()
        )


class TestClaimFirst:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_dense_and_sparse_agree(self, seed):
        rng = np.random.default_rng(seed)
        targets = rng.integers(0, 50, size=200)
        claimable = rng.random(200) < 0.5
        dense = claim_first(targets, 50, claimable, strategy="dense")
        sparse = claim_first(targets, 50, claimable, strategy="sparse")
        assert np.array_equal(dense, sparse)

    def test_first_position_wins(self):
        targets = np.asarray([3, 1, 3, 2, 1])
        first = claim_first(targets, 4)
        assert first.tolist() == [True, True, False, True, False]

    def test_claimable_filters_winners(self):
        targets = np.asarray([3, 3])
        claimable = np.asarray([False, True])
        first = claim_first(targets, 4, claimable)
        # The stream-first position is the claim; masking it out does
        # not promote the second occurrence (it mirrors the scalar
        # loop's "check visited, then claim" order).
        assert first.tolist() == [False, False]

    def test_empty_stream(self):
        out = claim_first(np.zeros(0, dtype=np.int64), 10)
        assert out.shape == (0,)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(InvalidParameterError, match="strategy"):
            claim_first(np.asarray([0]), 4, strategy="magic")


class TestFrontier:
    def test_density_switch(self):
        assert Frontier(np.arange(10), 16).is_dense
        assert not Frontier(np.arange(1), 1000).is_dense

    def test_advance_gathers_csr_order(self):
        graph = from_edges(
            [(0, 1), (0, 2), (1, 2), (2, 0)], num_nodes=3
        )
        frontier = Frontier(np.asarray([2, 0]), graph.num_nodes)
        edges = frontier.advance(graph.offsets, graph.adjacency)
        assert edges.degrees.tolist() == [1, 2]
        assert edges.targets.tolist() == [0, 1, 2]
        assert edges.total == 3


class TestBucketQueue:
    def test_pop_bucket_serves_smallest(self):
        queue = BucketQueue()
        queue.push(np.asarray([5, 2, 5, 2]), np.asarray([0, 1, 2, 3]))
        key, items = queue.pop_bucket()
        assert key == 2
        assert sorted(items.tolist()) == [1, 3]
        key, items = queue.pop_bucket()
        assert key == 5
        assert sorted(items.tolist()) == [0, 2]
        assert queue.empty
        assert queue.pop_bucket() is None

    def test_pop_at_drains_fused_reinsertions(self):
        queue = BucketQueue()
        queue.push(np.asarray([3]), np.asarray([0]))
        key, _ = queue.pop_bucket()
        # Light relaxations land back in the active bucket ...
        queue.push(np.asarray([3, 4]), np.asarray([1, 2]))
        refill = queue.pop_at(key)
        assert refill.tolist() == [1]
        # ... and once the bucket stays empty, fusion stops.
        assert queue.pop_at(key) is None
        key, items = queue.pop_bucket()
        assert (key, items.tolist()) == (4, [2])

    def test_push_empty_is_noop(self):
        queue = BucketQueue()
        queue.push(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        assert queue.empty


class TestTraceEmitter:
    def test_flush_is_backend_identical(self):
        lines = np.asarray([0, 3, 1, 3, 0], dtype=np.int64)
        demand = np.asarray([True, True, False, True, True])
        memories = {}
        for backend in ("step", "replay"):
            memory = Memory(tiny_hierarchy(), cache_backend=backend)
            TraceEmitter(memory).flush(
                lines, demand, extra_l1=2, prefetched=1
            )
            memories[backend] = memory
        assert (
            memories["step"].level_counts
            == memories["replay"].level_counts
        )
        assert (
            memories["step"].total_refs
            == memories["replay"].total_refs
        )

    def test_empty_flush_records_nothing(self):
        memory = Memory(tiny_hierarchy())
        TraceEmitter(memory).flush(np.zeros(0, dtype=np.int64))
        assert memory.total_refs == 0


# ---------------------------------------------------------------------
# Backend dispatch
# ---------------------------------------------------------------------
RUNTIME_PORTED = ("nq", "bfs", "sp", "pr", "lp", "diam")


class TestBackendDispatch:
    def test_backends_enumerated(self):
        assert ALGO_BACKENDS == ("runtime", "scalar")

    @pytest.mark.parametrize("name", RUNTIME_PORTED)
    def test_scalar_backend_selects_the_oracle(self, name):
        spec = REGISTRY[name]
        assert traced_fn(spec, "runtime") is spec.traced
        assert traced_fn(spec, "scalar") is spec.traced_scalar
        assert spec.traced_scalar is not spec.traced

    def test_scalar_backend_falls_back_without_an_oracle(self):
        spec = REGISTRY["kcore"]  # scalar by design: no separate oracle
        assert spec.traced_scalar is None
        assert traced_fn(spec, "scalar") is spec.traced

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidParameterError, match="backend"):
            traced_fn(REGISTRY["bfs"], "gpu")


# ---------------------------------------------------------------------
# Counter-identity parity: runtime vs scalar oracle
# ---------------------------------------------------------------------
@pytest.fixture(scope="module")
def social():
    return generators.social_graph(120, edges_per_node=5, seed=7)


EDGE_CASES = {
    "empty": from_edges([], num_nodes=0),
    "edgeless": from_edges([], num_nodes=4),
    "selfloop": from_edges([(0, 0), (0, 1), (2, 2)], num_nodes=3),
    "path": from_edges([(0, 1), (1, 2), (2, 3)], num_nodes=4),
}


def parity_params(name):
    if name == "sp":
        return {"source": 0}
    if name in ("pr", "lp"):
        return {"iterations": 3}
    if name == "diam":
        return {"num_sources": 2, "seed": 0}
    return {}


def run_backend(graph, name, algo_backend, cache_backend, params):
    memory = Memory(tiny_hierarchy(), cache_backend=cache_backend)
    traced = traced_fn(REGISTRY[name], algo_backend)
    result = traced(graph, memory, **params)
    return (
        np.asarray(result),
        memory.level_counts,
        memory.total_refs,
        memory.prefetched_refs,
    )


def assert_counter_identical(graph, name, cache_backend, params=None):
    params = parity_params(name) if params is None else params
    scalar = run_backend(graph, name, "scalar", cache_backend, params)
    runtime = run_backend(graph, name, "runtime", cache_backend, params)
    assert np.array_equal(scalar[0], runtime[0])
    assert scalar[1:] == runtime[1:]


class TestCounterIdentity:
    @pytest.mark.parametrize("cache_backend", ["step", "replay"])
    @pytest.mark.parametrize("name", RUNTIME_PORTED)
    def test_social_graph(self, social, name, cache_backend):
        assert_counter_identical(social, name, cache_backend)

    @pytest.mark.parametrize("case", sorted(EDGE_CASES))
    @pytest.mark.parametrize("name", RUNTIME_PORTED)
    def test_edge_case_graphs(self, name, case):
        graph = EDGE_CASES[case]
        if graph.num_nodes == 0 and name in ("sp", "diam"):
            # Both require a valid source; the empty graph has none.
            return
        assert_counter_identical(graph, name, "replay")

    @pytest.mark.parametrize("name", ("pr", "lp"))
    def test_zero_iterations(self, social, name):
        assert_counter_identical(
            social, name, "replay", {"iterations": 0}
        )
