"""Delta-stepping SSSP: weights, oracle parity, registry wiring."""

import numpy as np
import pytest

from repro.algorithms import REGISTRY
from repro.algorithms.deltastep import (
    DEFAULT_DELTA,
    INFINITY,
    MAX_WEIGHT,
    delta_stepping,
    delta_stepping_traced,
    edge_weights,
)
from repro.cache import CacheHierarchy, CacheLevel, Memory
from repro.errors import InvalidParameterError
from repro.graph import from_edges, generators


def tiny_hierarchy():
    return CacheHierarchy(
        [
            CacheLevel(2 * 64, 64, 2, "L1"),
            CacheLevel(4 * 64, 64, 4, "L2"),
            CacheLevel(8 * 64, 64, 8, "L3"),
        ]
    )


@pytest.fixture(scope="module")
def social():
    return generators.social_graph(100, edges_per_node=5, seed=11)


class TestEdgeWeights:
    def test_deterministic(self, social):
        assert np.array_equal(
            edge_weights(social), edge_weights(social)
        )

    def test_range(self, social):
        weights = edge_weights(social)
        assert weights.shape == (social.num_edges,)
        assert int(weights.min()) >= 1
        assert int(weights.max()) <= MAX_WEIGHT

    def test_symmetric_on_reverse_edges(self):
        graph = from_edges(
            [(0, 1), (1, 0), (1, 2), (2, 1)], num_nodes=3
        )
        weights = edge_weights(graph)
        # adjacency is [1, 0, 2, 1]: positions 0/1 are the same
        # unordered pair, as are 2/3.
        assert weights[0] == weights[1]
        assert weights[2] == weights[3]

    def test_bad_max_weight_rejected(self, social):
        with pytest.raises(InvalidParameterError, match="max_weight"):
            edge_weights(social, max_weight=0)


class TestPureOracle:
    def test_hand_checked_distances(self):
        graph = from_edges(
            [(0, 1), (1, 2), (0, 2)], num_nodes=4
        )
        # adjacency is [1, 2 | 2]: w(0,1)=2, w(0,2)=9, w(1,2)=3.
        weights = np.asarray([2, 9, 3])
        distance = delta_stepping(graph, source=0, weights=weights)
        assert distance.tolist()[:3] == [0, 2, 5]  # 0->1->2 beats 0->2
        assert distance[3] == INFINITY  # unreachable

    def test_source_distance_is_zero(self, social):
        assert delta_stepping(social, source=4)[4] == 0

    def test_bad_source_rejected(self, social):
        with pytest.raises(InvalidParameterError, match="source"):
            delta_stepping(social, source=social.num_nodes)

    def test_bad_delta_rejected(self, social):
        with pytest.raises(InvalidParameterError, match="delta"):
            delta_stepping(social, delta=0)


class TestTracedParity:
    @pytest.mark.parametrize("delta", [1, DEFAULT_DELTA, 40])
    @pytest.mark.parametrize("cache_backend", ["step", "replay"])
    def test_matches_oracle(self, social, cache_backend, delta):
        memory = Memory(tiny_hierarchy(), cache_backend=cache_backend)
        traced = delta_stepping_traced(
            social, memory, source=2, delta=delta
        )
        assert np.array_equal(
            traced, delta_stepping(social, source=2, delta=delta)
        )
        assert memory.total_refs > 0

    @pytest.mark.parametrize(
        "edges, num_nodes",
        [
            ([], 1),
            ([(0, 0)], 1),
            ([(0, 1), (1, 2), (2, 3)], 4),
            ([(0, 1), (1, 0)], 3),  # node 2 unreachable
        ],
    )
    def test_edge_case_graphs(self, edges, num_nodes):
        graph = from_edges(edges, num_nodes=num_nodes)
        memory = Memory(tiny_hierarchy(), cache_backend="replay")
        traced = delta_stepping_traced(graph, memory, source=0)
        assert np.array_equal(traced, delta_stepping(graph, source=0))

    def test_delta_does_not_change_distances(self, social):
        baseline = None
        for delta in (1, 3, 9, 100):
            memory = Memory(tiny_hierarchy(), cache_backend="replay")
            distance = delta_stepping_traced(
                social, memory, source=0, delta=delta
            )
            if baseline is None:
                baseline = distance
            else:
                assert np.array_equal(distance, baseline)


class TestRegistryWiring:
    def test_registered_off_headline(self):
        spec = REGISTRY["dsssp"]
        assert spec.pure is delta_stepping
        assert spec.traced is delta_stepping_traced
        assert spec.headline is False
        assert spec.source_params == ("source",)
