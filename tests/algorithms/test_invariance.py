"""Relabeling invariance: algorithm *results* are properties of the
graph, not of its memory layout.

For every ordering-relabeled copy of a graph, each algorithm must
produce the same logical answer (mapped back through the
permutation).  This is the correctness backbone of the whole
experiment design: orderings may only change *performance*.
"""

import numpy as np
import pytest

from repro.algorithms import (
    core_decomposition,
    diameter,
    dominating_set,
    neighbor_query,
    pagerank,
    shortest_paths,
    strongly_connected_components,
)
from repro.graph import generators, relabel
from repro.ordering import ORDERING_NAMES, compute_ordering


@pytest.fixture(scope="module")
def graph():
    return generators.social_graph(120, edges_per_node=5, seed=77)


@pytest.fixture(scope="module", params=["gorder", "rcm", "random"])
def permuted(request, graph):
    perm = compute_ordering(request.param, graph, seed=13)
    return relabel(graph, perm), perm


class TestResultInvariance:
    def test_neighbor_query(self, graph, permuted):
        relabeled, perm = permuted
        original = neighbor_query(graph)
        transformed = neighbor_query(relabeled)
        assert np.array_equal(original, transformed[perm])

    def test_pagerank(self, graph, permuted):
        relabeled, perm = permuted
        original = pagerank(graph, iterations=40)
        transformed = pagerank(relabeled, iterations=40)
        assert np.allclose(original, transformed[perm])

    def test_shortest_paths(self, graph, permuted):
        relabeled, perm = permuted
        source = 3
        original = shortest_paths(graph, source)
        transformed = shortest_paths(relabeled, int(perm[source]))
        assert np.array_equal(original, transformed[perm])

    def test_scc_partition(self, graph, permuted):
        relabeled, perm = permuted
        original = strongly_connected_components(graph)
        transformed = strongly_connected_components(relabeled)[perm]
        # Component ids may differ; the partition must not.
        mapping: dict[int, int] = {}
        for a, b in zip(original.tolist(), transformed.tolist()):
            assert mapping.setdefault(a, b) == b
        assert len(set(mapping.values())) == len(mapping)

    def test_core_numbers(self, graph, permuted):
        relabeled, perm = permuted
        original = core_decomposition(graph)
        transformed = core_decomposition(relabeled)
        assert np.array_equal(original, transformed[perm])

    def test_diameter(self, graph, permuted):
        relabeled, perm = permuted
        sources = [0, 7, 19]
        original = diameter(graph, sources=sources)
        transformed = diameter(
            relabeled, sources=[int(perm[s]) for s in sources]
        )
        assert original == transformed

    def test_dominating_set_still_dominates(self, graph, permuted):
        relabeled, _ = permuted
        chosen = dominating_set(relabeled)
        in_set = np.zeros(relabeled.num_nodes, dtype=bool)
        in_set[chosen] = True
        covered = in_set.copy()
        for u in chosen:
            covered[relabeled.out_neighbors(int(u))] = True
        assert covered.all()


class TestAllOrderingsPreserveResults:
    @pytest.mark.parametrize("ordering", ORDERING_NAMES)
    def test_pagerank_under_every_ordering(self, graph, ordering):
        perm = compute_ordering(ordering, graph, seed=5)
        relabeled = relabel(graph, perm)
        original = pagerank(graph, iterations=25)
        transformed = pagerank(relabeled, iterations=25)
        assert np.allclose(original, transformed[perm])
