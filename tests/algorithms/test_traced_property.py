"""Property: traced twins equal pure implementations on ANY graph.

Hypothesis sweeps arbitrary small graphs through every registered
algorithm pair.  This is the strongest guard against the two
implementations drifting apart as either is optimised.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.algorithms import REGISTRY
from repro.cache import Memory

from tests.conftest import graph_strategy

GRAPHS = graph_strategy(max_nodes=10, max_edges=30)


def params_for(name, graph):
    if name == "sp":
        return {"source": 0}
    if name == "pr":
        return {"iterations": 3}
    if name in ("lp",):
        return {"iterations": 3}
    if name == "diam":
        return {"sources": [0]}
    return {}


@pytest.mark.parametrize("name", sorted(REGISTRY))
class TestTracedEqualsPure:
    @settings(max_examples=25, deadline=None)
    @given(GRAPHS)
    def test_equivalence(self, name, graph):
        if graph.num_nodes == 0:
            return
        spec = REGISTRY[name]
        params = params_for(name, graph)
        pure = spec.pure(graph, **params)
        traced = spec.traced(graph, Memory(), **params)
        if isinstance(pure, np.ndarray):
            assert np.allclose(pure, traced)
        else:
            assert pure == traced
