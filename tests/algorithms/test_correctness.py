"""Correctness of the nine benchmark algorithms.

Each algorithm is checked against an independent reference
(networkx or a hand-computed value) on deterministic graphs and on the
small generator fixtures.
"""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import (
    INFINITY,
    breadth_first_search,
    core_decomposition,
    depth_first_search,
    diameter,
    dominating_set,
    neighbor_query,
    pagerank,
    pick_sources,
    shortest_paths,
    strongly_connected_components,
)
from repro.errors import InvalidParameterError
from repro.graph import from_edges, generators


def to_networkx(graph):
    result = nx.DiGraph()
    result.add_nodes_from(range(graph.num_nodes))
    result.add_edges_from(graph.edges())
    return result


@pytest.fixture(scope="module")
def social():
    return generators.social_graph(130, edges_per_node=5, seed=21)


@pytest.fixture(scope="module")
def web():
    return generators.web_graph(
        180, pages_per_host=18, out_degree=5, seed=21
    )


class TestNeighborQuery:
    def test_known_values(self):
        graph = from_edges([(0, 1), (0, 2), (1, 2), (2, 0)])
        # degrees: d0=2, d1=1, d2=1
        q = neighbor_query(graph)
        assert q.tolist() == [1 + 1, 1, 2]

    def test_empty_rows(self):
        graph = from_edges([(0, 1)], num_nodes=3)
        assert neighbor_query(graph).tolist() == [0, 0, 0]

    def test_sum_identity(self, social):
        """sum(q) = sum over edges of out_degree(target)."""
        q = neighbor_query(social)
        degrees = social.out_degrees()
        sources, targets = social.edge_array()
        assert q.sum() == degrees[targets].sum()


class TestBFS:
    def test_distances_match_networkx(self, social):
        distance = breadth_first_search(social)
        lengths = nx.single_source_shortest_path_length(
            to_networkx(social), 0
        )
        for node, expected in lengths.items():
            assert distance[node] <= expected

    def test_path_graph(self):
        graph = generators.path(5)
        assert breadth_first_search(graph).tolist() == [0, 1, 2, 3, 4]

    def test_forest_restarts(self, two_components):
        distance = breadth_first_search(two_components)
        assert (distance >= 0).all()
        assert distance[3] == 0  # second component restarts at 3

    def test_every_node_visited(self, web):
        assert (breadth_first_search(web) >= 0).all()


class TestDFS:
    def test_preorder_path(self):
        graph = generators.path(4)
        assert depth_first_search(graph).tolist() == [0, 1, 2, 3]

    def test_preorder_is_permutation(self, social):
        preorder = depth_first_search(social)
        assert sorted(preorder.tolist()) == list(
            range(social.num_nodes)
        )

    def test_branching(self):
        graph = from_edges([(0, 1), (0, 2), (1, 3)])
        # stack discipline: 0, then 1 (smallest child), then 3, then 2
        assert depth_first_search(graph).tolist() == [0, 1, 3, 2]


class TestSCC:
    def test_matches_networkx(self, social):
        component = strongly_connected_components(social)
        expected = list(nx.strongly_connected_components(
            to_networkx(social)
        ))
        assert component.max() + 1 == len(expected)
        for group in expected:
            ids = {int(component[u]) for u in group}
            assert len(ids) == 1

    def test_cycle_is_one_component(self, triangle):
        component = strongly_connected_components(triangle)
        assert len(set(component.tolist())) == 1

    def test_dag_all_singletons(self):
        graph = from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        component = strongly_connected_components(graph)
        assert len(set(component.tolist())) == 4

    def test_matches_networkx_on_web(self, web):
        component = strongly_connected_components(web)
        assert component.max() + 1 == nx.number_strongly_connected_components(
            to_networkx(web)
        )


class TestShortestPaths:
    def test_matches_bfs_distances(self, social):
        distance = shortest_paths(social, 0)
        lengths = nx.single_source_shortest_path_length(
            to_networkx(social), 0
        )
        for node in range(social.num_nodes):
            if node in lengths:
                assert distance[node] == lengths[node]
            else:
                assert distance[node] == INFINITY

    def test_source_distance_zero(self, web):
        assert shortest_paths(web, 7)[7] == 0

    def test_unreachable_is_infinity(self):
        graph = from_edges([(0, 1)], num_nodes=3)
        distance = shortest_paths(graph, 0)
        assert distance[2] == INFINITY

    def test_source_validation(self, triangle):
        with pytest.raises(InvalidParameterError):
            shortest_paths(triangle, -1)
        with pytest.raises(InvalidParameterError):
            shortest_paths(triangle, 3)


class TestPageRank:
    def test_matches_networkx(self, social):
        ranks = pagerank(social, iterations=100)
        expected = nx.pagerank(
            to_networkx(social), alpha=0.85, max_iter=200, tol=1e-12
        )
        for node in range(social.num_nodes):
            assert ranks[node] == pytest.approx(
                expected[node], abs=1e-8
            )

    def test_sums_to_one(self, web):
        assert pagerank(web, iterations=50).sum() == pytest.approx(1.0)

    def test_dangling_nodes_handled(self):
        graph = from_edges([(0, 1)], num_nodes=2)  # node 1 dangles
        ranks = pagerank(graph, iterations=60)
        assert ranks.sum() == pytest.approx(1.0)
        assert ranks[1] > ranks[0]

    def test_symmetric_cycle_uniform(self, triangle):
        ranks = pagerank(triangle, iterations=60)
        assert np.allclose(ranks, 1 / 3)

    def test_zero_iterations_is_uniform(self, triangle):
        assert np.allclose(pagerank(triangle, iterations=0), 1 / 3)

    def test_validation(self, triangle):
        with pytest.raises(InvalidParameterError):
            pagerank(triangle, iterations=-1)
        with pytest.raises(InvalidParameterError):
            pagerank(triangle, damping=1.5)

    def test_empty_graph(self):
        graph = from_edges([], num_nodes=0)
        assert pagerank(graph).shape == (0,)


class TestDominatingSet:
    def _assert_dominates(self, graph, chosen):
        in_set = np.zeros(graph.num_nodes, dtype=bool)
        in_set[chosen] = True
        covered = in_set.copy()
        for u in chosen:
            covered[graph.out_neighbors(int(u))] = True
        assert covered.all()

    def test_dominates_social(self, social):
        self._assert_dominates(social, dominating_set(social))

    def test_dominates_web(self, web):
        self._assert_dominates(web, dominating_set(web))

    def test_star_picks_hub_only(self):
        graph = generators.star(8)
        chosen = dominating_set(graph)
        assert chosen.tolist() == [0]

    def test_isolated_nodes_all_chosen(self):
        graph = from_edges([], num_nodes=4)
        assert sorted(dominating_set(graph).tolist()) == [0, 1, 2, 3]

    def test_greedy_is_reasonably_small(self, social):
        chosen = dominating_set(social)
        assert len(chosen) < social.num_nodes / 2


class TestKcore:
    def test_matches_networkx(self, social):
        core = core_decomposition(social)
        undirected = to_networkx(social).to_undirected()
        undirected.remove_edges_from(nx.selfloop_edges(undirected))
        expected = nx.core_number(undirected)
        for node in range(social.num_nodes):
            assert core[node] == expected[node]

    def test_matches_networkx_on_web(self, web):
        core = core_decomposition(web)
        undirected = to_networkx(web).to_undirected()
        undirected.remove_edges_from(nx.selfloop_edges(undirected))
        expected = nx.core_number(undirected)
        for node in range(web.num_nodes):
            assert core[node] == expected[node]

    def test_clique_core(self):
        graph = generators.complete(5)
        assert core_decomposition(graph).tolist() == [4] * 5

    def test_path_core_is_one(self):
        graph = generators.path(6)
        assert core_decomposition(graph).tolist() == [1] * 6


class TestDiameter:
    def test_exceeds_any_single_run(self, social):
        sources = [0, 5, 9]
        estimate = diameter(social, sources=sources)
        single = shortest_paths(social, 0)
        finite = single[single != INFINITY]
        assert estimate >= int(finite.max())

    def test_path_diameter_from_endpoint(self):
        graph = generators.path(7)
        assert diameter(graph, sources=[0]) == 6

    def test_seeded_sources_reproducible(self, web):
        a = diameter(web, num_sources=3, seed=5)
        b = diameter(web, num_sources=3, seed=5)
        assert a == b

    def test_pick_sources_validation(self, triangle):
        with pytest.raises(InvalidParameterError):
            pick_sources(triangle, 0)
        with pytest.raises(InvalidParameterError):
            pick_sources(from_edges([], num_nodes=0), 1)

    def test_lower_bounds_true_diameter(self, web):
        """The sampled estimate never exceeds the true directed
        eccentricity maximum."""
        estimate = diameter(web, num_sources=4, seed=3)
        true = 0
        graph_nx = to_networkx(web)
        for node in range(web.num_nodes):
            lengths = nx.single_source_shortest_path_length(
                graph_nx, node
            )
            true = max(true, max(lengths.values()))
        assert estimate <= true


class TestAlgorithmInternals:
    """Additional behavioural details the paper's descriptions pin."""

    def test_bfs_lexicographic_tie_break(self):
        # 0 -> {2, 1}: BFS must visit 1 before 2 (ascending ids).
        graph = from_edges([(0, 2), (0, 1), (1, 3), (2, 4)])
        distance = breadth_first_search(graph)
        assert distance[1] == 1 and distance[2] == 1
        assert distance[3] == 2 and distance[4] == 2

    def test_sp_multiple_relaxations_converge(self):
        # Two paths to 3: direct (via 1, length 2) and long (via 2,
        # length 3); SPFA must settle on 2 regardless of queue order.
        graph = from_edges(
            [(0, 1), (1, 3), (0, 2), (2, 4), (4, 3)]
        )
        assert shortest_paths(graph, 0)[3] == 2

    def test_ds_greedy_picks_best_cover_first(self):
        # Node 0 covers 4 nodes; node 5 covers 2. Greedy takes 0 first.
        graph = from_edges(
            [(0, 1), (0, 2), (0, 3), (5, 6)]
        )
        chosen = dominating_set(graph)
        assert chosen[0] == 0

    def test_kcore_two_level_structure(self):
        # A 4-clique with a pendant path: clique core 3, path core 1.
        edges = []
        for u in range(4):
            for v in range(4):
                if u != v:
                    edges.append((u, v))
        edges += [(3, 4), (4, 3), (4, 5), (5, 4)]
        graph = from_edges(edges)
        core = core_decomposition(graph)
        assert core[:4].tolist() == [3, 3, 3, 3]
        assert core[4] == 1 and core[5] == 1

    def test_pagerank_rank_reflects_in_degree(self):
        graph = generators.star(20)  # hub receives from all leaves
        ranks = pagerank(graph, iterations=60)
        assert ranks[0] == ranks.max()
