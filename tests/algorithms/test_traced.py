"""Traced algorithm variants: result equivalence + trace sanity.

The traced twins must compute exactly the same results as the pure
implementations while producing a non-trivial, ordering-sensitive
memory trace.
"""

import numpy as np
import pytest

from repro.algorithms import REGISTRY
from repro.cache import Memory, scaled_hierarchy
from repro.graph import from_edges, generators, relabel
from repro.ordering import gorder_order, random_order


@pytest.fixture(scope="module")
def graph():
    return generators.social_graph(150, edges_per_node=6, seed=33)


def params_for(name, graph):
    if name == "sp":
        return {"source": 1}
    if name == "pr":
        return {"iterations": 4}
    if name == "diam":
        return {"sources": [0, 3, 11]}
    return {}


ALGORITHMS = sorted(REGISTRY)


class TestEquivalence:
    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_traced_matches_pure(self, graph, name):
        spec = REGISTRY[name]
        params = params_for(name, graph)
        pure = spec.pure(graph, **params)
        traced = spec.traced(graph, Memory(), **params)
        if isinstance(pure, np.ndarray):
            assert np.allclose(pure, traced)
        else:
            assert pure == traced

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_traced_matches_pure_on_toy_graphs(self, name):
        toy = from_edges([(0, 1), (1, 2), (2, 0), (1, 3)], num_nodes=5)
        spec = REGISTRY[name]
        params = params_for(name, toy)
        if name == "diam":
            params = {"sources": [0]}
        pure = spec.pure(toy, **params)
        traced = spec.traced(toy, Memory(), **params)
        if isinstance(pure, np.ndarray):
            assert np.allclose(pure, traced)
        else:
            assert pure == traced


class TestTraceSanity:
    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_produces_references(self, graph, name):
        spec = REGISTRY[name]
        memory = Memory()
        spec.traced(graph, memory, **params_for(name, graph))
        assert memory.total_refs > graph.num_nodes
        stats = memory.stats()
        assert stats.l1_refs > 0
        assert stats.l1_misses > 0

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_reference_count_ordering_invariant(self, graph, name):
        """The algorithm does identical logical work under any
        relabeling, so demand reference counts match (the paper's
        'L1-ref is similar for all orderings' observation).

        Whole-graph algorithms are exactly invariant; for SP/Diam the
        sources are mapped through the permutation.  Label propagation
        is excluded: its ties break on raw node ids, so its sweep
        count (and hence its work) legitimately depends on the
        labeling.
        """
        if name == "lp":
            pytest.skip("label propagation tie-breaks on node ids")
        spec = REGISTRY[name]
        params = params_for(name, graph)
        perm = random_order(graph, seed=4)
        relabeled = relabel(graph, perm)
        mapped = dict(params)
        if name == "sp":
            mapped["source"] = int(perm[params["source"]])
        if name == "diam":
            mapped["sources"] = [int(perm[s]) for s in params["sources"]]
        memory_a = Memory()
        spec.traced(graph, memory_a, **params)
        memory_b = Memory()
        spec.traced(relabeled, memory_b, **mapped)
        # Queue/stack/heap traffic can differ slightly because the
        # visit order changes with ids; the bulk must match.
        assert memory_b.total_refs == pytest.approx(
            memory_a.total_refs, rel=0.15
        )

    def test_gorder_reduces_l1_misses_for_nq(self):
        big = generators.web_graph(
            3000, pages_per_host=100, out_degree=12, seed=5
        )
        spec = REGISTRY["nq"]
        random_memory = Memory(scaled_hierarchy())
        spec.traced(relabel(big, random_order(big, seed=1)), random_memory)
        gorder_memory = Memory(scaled_hierarchy())
        spec.traced(relabel(big, gorder_order(big)), gorder_memory)
        assert (
            gorder_memory.stats().l1_miss_rate
            < random_memory.stats().l1_miss_rate
        )
