"""Weighted k-core: batch peel vs sequential heap peel parity."""

import numpy as np
import pytest

from repro.algorithms import REGISTRY
from repro.algorithms.deltastep import edge_weights
from repro.algorithms.wkcore import (
    weighted_core_decomposition,
    weighted_core_decomposition_traced,
)
from repro.cache import CacheHierarchy, CacheLevel, Memory
from repro.graph import from_edges, generators


def tiny_hierarchy():
    return CacheHierarchy(
        [
            CacheLevel(2 * 64, 64, 2, "L1"),
            CacheLevel(4 * 64, 64, 4, "L2"),
            CacheLevel(8 * 64, 64, 8, "L3"),
        ]
    )


@pytest.fixture(scope="module")
def social():
    return generators.social_graph(100, edges_per_node=5, seed=13)


class TestPureOracle:
    def test_coreness_bounded_by_weighted_degree(self, social):
        coreness = weighted_core_decomposition(social)
        undirected = social.undirected()
        weights = edge_weights(undirected)
        degree = np.zeros(social.num_nodes, dtype=np.int64)
        sources, _ = undirected.edge_array()
        np.add.at(degree, sources, weights)
        assert (coreness <= degree).all()
        assert (coreness >= 0).all()

    def test_isolated_nodes_have_zero_coreness(self):
        graph = from_edges([(0, 1)], num_nodes=4)
        coreness = weighted_core_decomposition(graph)
        assert coreness[2] == 0
        assert coreness[3] == 0

    def test_first_peeled_node_keeps_its_weighted_degree(self, social):
        # The first pop is the global minimum weighted degree and the
        # clamp cannot lower it, so its coreness is exactly its degree.
        undirected = social.undirected()
        weights = edge_weights(undirected)
        degree = np.zeros(social.num_nodes, dtype=np.int64)
        sources, _ = undirected.edge_array()
        np.add.at(degree, sources, weights)
        coreness = weighted_core_decomposition(social)
        lowest = int(np.argmin(degree))
        assert coreness[lowest] == degree[lowest]


class TestTracedParity:
    @pytest.mark.parametrize("cache_backend", ["step", "replay"])
    def test_matches_oracle(self, social, cache_backend):
        memory = Memory(tiny_hierarchy(), cache_backend=cache_backend)
        traced = weighted_core_decomposition_traced(social, memory)
        assert np.array_equal(
            traced, weighted_core_decomposition(social)
        )
        assert memory.total_refs > 0

    @pytest.mark.parametrize(
        "edges, num_nodes",
        [
            ([], 0),
            ([], 3),
            ([(0, 0)], 1),
            ([(0, 1), (1, 2), (2, 0), (2, 3)], 5),
            ([(0, 1), (1, 2), (2, 3)], 4),
        ],
    )
    def test_edge_case_graphs(self, edges, num_nodes):
        graph = from_edges(edges, num_nodes=num_nodes)
        memory = Memory(tiny_hierarchy(), cache_backend="replay")
        traced = weighted_core_decomposition_traced(graph, memory)
        assert np.array_equal(
            traced, weighted_core_decomposition(graph)
        )


class TestRegistryWiring:
    def test_registered_off_headline(self):
        spec = REGISTRY["wkcore"]
        assert spec.pure is weighted_core_decomposition
        assert spec.traced is weighted_core_decomposition_traced
        assert spec.headline is False
