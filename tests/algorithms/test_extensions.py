"""Tests for the extension algorithms: WCC, triangles, label prop."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings

from repro.algorithms import (
    UnionFind,
    label_propagation,
    label_propagation_traced,
    triangle_count,
    triangle_count_traced,
    weakly_connected_components,
    weakly_connected_components_traced,
)
from repro.cache import Memory
from repro.errors import InvalidParameterError
from repro.graph import from_edges, generators

from tests.conftest import graph_strategy


def to_networkx(graph):
    result = nx.DiGraph()
    result.add_nodes_from(range(graph.num_nodes))
    result.add_edges_from(graph.edges())
    return result


@pytest.fixture(scope="module")
def social():
    return generators.social_graph(150, edges_per_node=6, seed=61)


class TestUnionFind:
    def test_initial_singletons(self):
        dsu = UnionFind(4)
        assert dsu.num_components == 4
        assert dsu.find(2) == 2

    def test_union_merges(self):
        dsu = UnionFind(4)
        assert dsu.union(0, 1)
        assert not dsu.union(1, 0)
        assert dsu.find(0) == dsu.find(1)
        assert dsu.num_components == 3

    def test_components_compacted(self):
        dsu = UnionFind(5)
        dsu.union(0, 4)
        dsu.union(1, 3)
        labels = dsu.components()
        assert labels[0] == labels[4]
        assert labels[1] == labels[3]
        assert len(set(labels.tolist())) == 3
        assert labels.max() == 2

    def test_negative_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            UnionFind(-1)

    def test_traced_counts_accesses(self):
        memory = Memory()
        dsu = UnionFind(64, memory=memory)
        for i in range(63):
            dsu.union(i, i + 1)
        assert memory.total_refs > 63

    @given(graph_strategy())
    def test_transitive_closure_property(self, graph):
        dsu = UnionFind(graph.num_nodes)
        for u, v in graph.edges():
            dsu.union(u, v)
        for u, v in graph.edges():
            assert dsu.find(u) == dsu.find(v)


class TestWCC:
    def test_matches_networkx(self, social):
        ours = weakly_connected_components(social)
        expected = nx.number_weakly_connected_components(
            to_networkx(social)
        )
        assert int(ours.max()) + 1 == expected

    def test_two_islands(self, two_components):
        labels = weakly_connected_components(two_components)
        assert len(set(labels.tolist())) == 2
        assert labels[0] == labels[1] == labels[2]

    def test_direction_ignored(self):
        graph = from_edges([(0, 1), (2, 1)])
        labels = weakly_connected_components(graph)
        assert len(set(labels.tolist())) == 1

    def test_traced_matches_pure(self, social):
        pure = weakly_connected_components(social)
        traced = weakly_connected_components_traced(social, Memory())
        assert np.array_equal(pure, traced)

    @settings(max_examples=30, deadline=None)
    @given(graph_strategy())
    def test_property_vs_networkx(self, graph):
        ours = weakly_connected_components(graph)
        if graph.num_nodes == 0:
            return
        expected = nx.number_weakly_connected_components(
            to_networkx(graph)
        )
        assert int(ours.max()) + 1 == expected


class TestTriangles:
    def test_single_triangle(self, triangle):
        assert triangle_count(triangle) == 1

    def test_complete_graph(self):
        graph = generators.complete(5)
        assert triangle_count(graph) == 10  # C(5, 3)

    def test_triangle_free(self):
        graph = generators.grid(4, 4)
        assert triangle_count(graph) == 0

    def test_matches_networkx(self, social):
        undirected = to_networkx(social).to_undirected()
        undirected.remove_edges_from(nx.selfloop_edges(undirected))
        expected = sum(nx.triangles(undirected).values()) // 3
        assert triangle_count(social) == expected

    def test_traced_matches_pure(self, social):
        assert triangle_count_traced(
            social, Memory()
        ) == triangle_count(social)

    @settings(max_examples=30, deadline=None)
    @given(graph_strategy())
    def test_property_vs_networkx(self, graph):
        undirected = to_networkx(graph).to_undirected()
        undirected.remove_edges_from(nx.selfloop_edges(undirected))
        expected = sum(nx.triangles(undirected).values()) // 3
        assert triangle_count(graph) == expected


class TestLabelPropagation:
    def test_two_cliques_two_communities(self):
        edges = []
        for block in (0, 5):
            for u in range(block, block + 5):
                for v in range(block, block + 5):
                    if u != v:
                        edges.append((u, v))
        edges.append((0, 5))
        graph = from_edges(edges)
        labels = label_propagation(graph, iterations=20)
        assert len({int(labels[u]) for u in range(5)}) == 1
        assert len({int(labels[u]) for u in range(5, 10)}) == 1

    def test_zero_iterations_all_distinct(self, social):
        labels = label_propagation(social, iterations=0)
        assert len(set(labels.tolist())) == social.num_nodes

    def test_validation(self, social):
        with pytest.raises(InvalidParameterError):
            label_propagation(social, iterations=-1)

    def test_deterministic(self, social):
        a = label_propagation(social, iterations=5)
        b = label_propagation(social, iterations=5)
        assert np.array_equal(a, b)

    def test_traced_matches_pure(self, social):
        pure = label_propagation(social, iterations=4)
        traced = label_propagation_traced(
            social, Memory(), iterations=4
        )
        assert np.array_equal(pure, traced)

    def test_isolated_nodes_keep_labels_distinct(self):
        graph = from_edges([(0, 1), (1, 0)], num_nodes=4)
        labels = label_propagation(graph, iterations=5)
        assert labels[2] != labels[3]


class TestRegistry:
    def test_extensions_registered_not_headline(self):
        from repro.algorithms import ALGORITHM_NAMES, REGISTRY

        assert len(ALGORITHM_NAMES) == 9  # the paper's nine
        for name in ("wcc", "tc", "lp"):
            assert name in REGISTRY
            assert not REGISTRY[name].headline

    def test_extensions_run_through_runner(self, social):
        from repro.perf import run_cell

        for name in ("wcc", "tc", "lp"):
            result = run_cell(social, name, "gorder")
            assert result.cycles > 0
