"""Cross-module identities and conservation laws.

Each test here ties two independently implemented pieces together:
if either drifts, the identity breaks.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheHierarchy, CacheLevel, Memory
from repro.graph import invert_permutation
from repro.ordering import (
    gorder_order,
    gorder_score,
    gorder_sequence,
    window_scores,
)

from tests.conftest import graph_strategy


class TestScoreIdentities:
    @settings(max_examples=20, deadline=None)
    @given(graph_strategy(max_nodes=9, max_edges=24))
    def test_window_scores_sum_to_objective(self, graph):
        """Sum of per-step window scores == F of the arrangement."""
        window = 3
        sequence = gorder_sequence(graph, window=window)
        perm = gorder_order(graph, window=window)
        assert int(
            window_scores(graph, sequence, window=window).sum()
        ) == gorder_score(graph, perm, window=window)

    @settings(max_examples=20, deadline=None)
    @given(graph_strategy(max_nodes=9, max_edges=24))
    def test_sequence_and_order_agree(self, graph):
        sequence = gorder_sequence(graph)
        perm = gorder_order(graph)
        assert np.array_equal(invert_permutation(perm), sequence)


class TestHierarchyConservation:
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
    def test_reference_flow_conservation(self, trace):
        """Refs at level k+1 == misses at level k, for every level."""
        hierarchy = CacheHierarchy(
            [
                CacheLevel(2 * 64, 64, 2, "L1"),
                CacheLevel(4 * 64, 64, 4, "L2"),
                CacheLevel(8 * 64, 64, 8, "L3"),
            ]
        )
        for line in trace:
            hierarchy.access(line)
        levels = hierarchy.levels
        assert levels[1].refs == levels[0].misses
        assert levels[2].refs == levels[1].misses
        stats = hierarchy.snapshot()
        assert stats.l1_refs == len(trace)
        assert stats.l3_misses <= stats.l1_misses

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
    def test_miss_rates_monotone_down_the_stack(self, trace):
        """Deeper levels see fewer references than shallower ones."""
        hierarchy = CacheHierarchy(
            [
                CacheLevel(2 * 64, 64, 2, "L1"),
                CacheLevel(8 * 64, 64, 8, "L2"),
            ]
        )
        for line in trace:
            hierarchy.access(line)
        stats = hierarchy.snapshot()
        assert stats.l3_refs <= stats.l1_refs


class TestMemoryLayout:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 200),  # length
                st.sampled_from([1, 2, 4, 8]),  # itemsize
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_arrays_never_share_lines(self, shapes):
        memory = Memory()
        arrays = [
            memory.array(f"a{i}", length, itemsize)
            for i, (length, itemsize) in enumerate(shapes)
        ]
        spans = []
        for array, (length, itemsize) in zip(arrays, shapes):
            first = array.line_of(0)
            last = array.line_of(max(length - 1, 0))
            spans.append((first, last))
        for i in range(len(spans)):
            for j in range(i + 1, len(spans)):
                lo_i, hi_i = spans[i]
                lo_j, hi_j = spans[j]
                assert hi_i < lo_j or hi_j < lo_i

    def test_total_refs_equals_level_counts(self):
        memory = Memory()
        array = memory.array("a", 100, 4)
        for index in range(0, 100, 3):
            array.touch(index)
        assert memory.total_refs == sum(memory.level_counts)


class TestStatsVsCost:
    def test_stall_only_from_non_l1_levels(self):
        """A trace that always hits L1 after warmup stalls only on the
        warmup misses."""
        memory = Memory()
        array = memory.array("a", 8, 4)  # one cache line
        for _ in range(100):
            array.touch(0)
        cost = memory.cost()
        model = memory.cost_model
        assert cost.stall_cycles == model.memory_stall  # 1 cold miss
        assert cost.execute_cycles == 100 * model.execute_per_ref
