"""The repo passes its own gate: ``repro-gorder lint --strict``.

This is the same check CI runs; keeping it in the suite means a
violation fails fast locally instead of at review time.
"""

from pathlib import Path

from repro.analysis import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_library_lints_clean_under_strict():
    report = run_lint(
        [str(REPO_ROOT / "src" / "repro")],
        baseline_path=REPO_ROOT / "lint_baseline.json",
        strict=True,
    )
    assert report.exit_code() == 0, report.render_text()


def test_benchmarks_and_examples_lint_clean():
    report = run_lint(
        [
            str(REPO_ROOT / "benchmarks"),
            str(REPO_ROOT / "examples"),
        ],
    )
    assert report.exit_code() == 0, report.render_text()
