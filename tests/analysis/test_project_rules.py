"""Cross-module rules REP008/REP009/REP010 and the acceptance
mutations: fixtures run against synthetic mini-packages; the
acceptance tests mutate a copy of the real tree and expect the gate
to fail."""

import shutil
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    ProjectAnalysis,
    rule_versions,
    run_project_lint,
)
from repro.analysis.knobs import Knob, KnobSurface
from repro.analysis.project_rules import (
    KnobPlumbingRule,
    LockGuardRule,
    OraclePurityRule,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def check(rule, paths=("pkg",)):
    project = ProjectAnalysis.build(list(paths))
    return rule.check_project(project)


def findings_with_noqa(rule, paths=("pkg",)):
    project = ProjectAnalysis.build(list(paths))
    return project.project_findings([rule])


# ----------------------------------------------------------------------
# REP008 — lock-guard inference
# ----------------------------------------------------------------------
class TestLockGuard:
    def test_guarded_elsewhere_fires_on_the_unguarded_site(
        self, make_tree
    ):
        make_tree({
            "pkg/__init__.py": "",
            "pkg/box.py": """
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def add(self, item):
                        with self._lock:
                            self._items.append(item)

                    def drop(self):
                        self._items.clear()
            """,
        })
        findings = check(LockGuardRule())
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "REP008"
        assert finding.path == "pkg/box.py"
        assert "Box.drop" in finding.message
        assert "self._items" in finding.message
        assert "self._lock" in finding.message

    def test_all_sites_guarded_is_clean(self, make_tree):
        make_tree({
            "pkg/__init__.py": "",
            "pkg/box.py": """
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def add(self, item):
                        with self._lock:
                            self._items.append(item)

                    def drop(self):
                        with self._lock:
                            self._items.clear()
            """,
        })
        assert check(LockGuardRule()) == []

    def test_never_guarded_attribute_is_clean(self, make_tree):
        """An attribute no site guards is (per this rule) not shared."""
        make_tree({
            "pkg/__init__.py": "",
            "pkg/box.py": """
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._hits = 0

                    def record(self):
                        self._hits += 1

                    def reset(self):
                        self._hits = 0
            """,
        })
        assert check(LockGuardRule()) == []

    def test_lockless_class_is_ignored(self, make_tree):
        make_tree({
            "pkg/__init__.py": "",
            "pkg/box.py": """
                class Box:
                    def add(self, item):
                        self._items = [item]

                    def drop(self):
                        self._items = []
            """,
        })
        assert check(LockGuardRule()) == []

    def test_init_assignments_are_exempt(self, make_tree):
        """Pre-publication construction never counts as a race."""
        make_tree({
            "pkg/__init__.py": "",
            "pkg/box.py": """
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def add(self, item):
                        with self._lock:
                            self._items.append(item)
            """,
        })
        assert check(LockGuardRule()) == []

    def test_lock_held_helper_is_inferred(self, make_tree):
        """A private helper whose every call site holds the lock is
        lock-held — the OrderingCache._lookup idiom."""
        make_tree({
            "pkg/__init__.py": "",
            "pkg/box.py": """
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def add(self, item):
                        with self._lock:
                            self._insert(item)

                    def refill(self, items):
                        with self._lock:
                            for item in items:
                                self._insert(item)

                    def reset(self):
                        with self._lock:
                            self._items = []

                    def _insert(self, item):
                        self._items.append(item)
            """,
        })
        assert check(LockGuardRule()) == []

    def test_helper_with_one_unguarded_call_site_fires(
        self, make_tree
    ):
        make_tree({
            "pkg/__init__.py": "",
            "pkg/box.py": """
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def add(self, item):
                        with self._lock:
                            self._insert(item)

                    def sneak(self, item):
                        self._insert(item)

                    def reset(self):
                        with self._lock:
                            self._items = []

                    def _insert(self, item):
                        self._items.append(item)
            """,
        })
        findings = check(LockGuardRule())
        assert len(findings) == 1
        assert "Box._insert" in findings[0].message

    def test_condition_wrapping_the_lock_counts_as_holding_it(
        self, make_tree
    ):
        make_tree({
            "pkg/__init__.py": "",
            "pkg/queue.py": """
                import threading

                class Queue:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._ready = threading.Condition(self._lock)
                        self._jobs = []

                    def put(self, job):
                        with self._ready:
                            self._jobs.append(job)

                    def drain(self):
                        with self._lock:
                            self._jobs.clear()
            """,
        })
        assert check(LockGuardRule()) == []

    def test_noqa_quarantines_an_intentional_site(self, make_tree):
        make_tree({
            "pkg/__init__.py": "",
            "pkg/box.py": """
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def add(self, item):
                        with self._lock:
                            self._items.append(item)

                    def drop(self):
                        self._items.clear()  # repro: noqa[REP008]
            """,
        })
        assert findings_with_noqa(LockGuardRule()) == []

    def test_baseline_grandfathers_then_gate_holds(self, make_tree):
        make_tree({
            "pkg/__init__.py": "",
            "pkg/box.py": """
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def add(self, item):
                        with self._lock:
                            self._items.append(item)

                    def drop(self):
                        self._items.clear()
            """,
        })
        report = run_project_lint(["pkg"])
        assert report.exit_code() == 1
        assert {f.rule for f in report.findings} == {"REP008"}
        Baseline.from_findings(
            report.findings, rule_versions=rule_versions()
        ).save("baseline.json")
        grandfathered = run_project_lint(
            ["pkg"], baseline_path="baseline.json"
        )
        assert grandfathered.exit_code() == 0
        assert len(grandfathered.baselined) == 1


# ----------------------------------------------------------------------
# REP009 — knob-plumbing completeness (synthetic registry)
# ----------------------------------------------------------------------
CFG_TREE = {
    "cfg/__init__.py": "",
    "cfg/profile.py": """
        from dataclasses import dataclass

        @dataclass
        class Profile:
            depth: int = 3
            width: int = 1
    """,
    "cfg/runner.py": """
        def run(depth=None):
            return depth
    """,
}


def cfg_rule(registry, classes=("cfg.profile.Profile",)):
    return KnobPlumbingRule(registry=registry, classes=classes)


def surface(token, scope="run", module="cfg.runner"):
    return KnobSurface(
        name="runner", module=module, scope=scope, token=token
    )


class TestKnobPlumbing:
    REGISTRY = (
        Knob(
            name="depth",
            declared_in="cfg.profile.Profile",
            surfaces=(surface("depth"),),
        ),
        Knob(name="width", declared_in="cfg.profile.Profile"),
    )

    def test_complete_plumbing_is_clean(self, make_tree):
        make_tree(CFG_TREE)
        assert check(cfg_rule(self.REGISTRY), paths=("cfg",)) == []

    def test_missing_surface_token_fires(self, make_tree):
        make_tree(CFG_TREE)
        registry = (
            Knob(
                name="depth",
                declared_in="cfg.profile.Profile",
                surfaces=(surface("breadth"),),
            ),
            Knob(name="width", declared_in="cfg.profile.Profile"),
        )
        findings = check(cfg_rule(registry), paths=("cfg",))
        assert len(findings) == 1
        assert "'breadth' not found" in findings[0].message
        assert findings[0].path == "cfg/profile.py"

    def test_missing_scope_fires(self, make_tree):
        make_tree(CFG_TREE)
        registry = (
            Knob(
                name="depth",
                declared_in="cfg.profile.Profile",
                surfaces=(surface("depth", scope="walk"),),
            ),
            Knob(name="width", declared_in="cfg.profile.Profile"),
        )
        findings = check(cfg_rule(registry), paths=("cfg",))
        assert len(findings) == 1
        assert "scope 'walk' not found" in findings[0].message

    def test_unregistered_field_fires(self, make_tree):
        make_tree(CFG_TREE)
        registry = (
            Knob(name="depth", declared_in="cfg.profile.Profile"),
        )
        findings = check(cfg_rule(registry), paths=("cfg",))
        assert len(findings) == 1
        assert "'width'" in findings[0].message
        assert "no entry in" in findings[0].message

    def test_stale_registry_entry_fires(self, make_tree):
        make_tree(CFG_TREE)
        registry = self.REGISTRY + (
            Knob(name="ghost", declared_in="cfg.profile.Profile"),
        )
        findings = check(cfg_rule(registry), paths=("cfg",))
        assert len(findings) == 1
        assert "'ghost'" in findings[0].message
        assert "no longer exists" in findings[0].message

    def test_missing_knob_class_fires(self, make_tree):
        make_tree(CFG_TREE)
        rule = cfg_rule(
            self.REGISTRY,
            classes=("cfg.profile.Profile", "cfg.profile.Extra"),
        )
        findings = check(rule, paths=("cfg",))
        assert len(findings) == 1
        assert "cfg.profile.Extra not found" in findings[0].message

    def test_surface_outside_analysed_paths_is_skipped(
        self, make_tree
    ):
        """Partial-path lints must not fabricate findings."""
        make_tree(CFG_TREE)
        registry = (
            Knob(
                name="depth",
                declared_in="cfg.profile.Profile",
                surfaces=(surface("depth", module="cfg.elsewhere"),),
            ),
            Knob(name="width", declared_in="cfg.profile.Profile"),
        )
        assert check(cfg_rule(registry), paths=("cfg",)) == []

    def test_class_module_outside_analysed_paths_is_skipped(
        self, make_tree
    ):
        make_tree({"other/__init__.py": "", "other/mod.py": "x = 1\n"})
        assert check(cfg_rule(self.REGISTRY), paths=("other",)) == []


# ----------------------------------------------------------------------
# REP010 — oracle purity
# ----------------------------------------------------------------------
class TestOraclePurity:
    def test_transitive_rng_fires_with_call_path(self, make_tree):
        make_tree({
            "orc/__init__.py": "",
            "orc/algo.py": """
                from orc.util import mix

                def count_reference(values):
                    return mix(values)
            """,
            "orc/util.py": """
                import numpy as np

                def mix(values):
                    return np.random.rand(len(values))
            """,
        })
        findings = check(OraclePurityRule(), paths=("orc",))
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "REP010"
        assert finding.path == "orc/util.py"
        assert "oracle orc.algo.count_reference" in finding.message
        assert (
            "orc.algo.count_reference -> orc.util.mix"
            in finding.message
        )

    def test_pure_oracle_is_clean(self, make_tree):
        make_tree({
            "orc/__init__.py": "",
            "orc/algo.py": """
                def count_traced_scalar(values):
                    return sum(values)
            """,
        })
        assert check(OraclePurityRule(), paths=("orc",)) == []

    def test_seeded_rng_is_exempt(self, make_tree):
        make_tree({
            "orc/__init__.py": "",
            "orc/algo.py": """
                import numpy as np

                def shuffle_reference(values):
                    rng = np.random.default_rng(7)
                    return rng.permutation(len(values))
            """,
        })
        assert check(OraclePurityRule(), paths=("orc",)) == []

    def test_unseeded_rng_in_the_root_fires(self, make_tree):
        make_tree({
            "orc/__init__.py": "",
            "orc/algo.py": """
                import numpy as np

                def shuffle_reference(values):
                    rng = np.random.default_rng()
                    return rng.permutation(len(values))
            """,
        })
        findings = check(OraclePurityRule(), paths=("orc",))
        assert len(findings) == 1
        assert "randomness" in findings[0].message

    def test_print_is_io(self, make_tree):
        make_tree({
            "orc/__init__.py": "",
            "orc/algo.py": """
                def count_reference(values):
                    print(len(values))
                    return len(values)
            """,
        })
        findings = check(OraclePurityRule(), paths=("orc",))
        assert len(findings) == 1
        assert "print()" in findings[0].message

    def test_numpy_out_kwarg_fires(self, make_tree):
        make_tree({
            "orc/__init__.py": "",
            "orc/algo.py": """
                import numpy as np

                def scan_reference(values, buf):
                    np.cumsum(values, out=buf)
                    return buf
            """,
        })
        findings = check(OraclePurityRule(), paths=("orc",))
        assert len(findings) == 1
        assert "in place" in findings[0].message

    def test_telemetry_mutation_fires(self, make_tree):
        make_tree({
            "orc/__init__.py": "",
            "orc/algo.py": """
                from repro import obs

                def count_reference(values):
                    obs.inc("oracle.calls")
                    return len(values)
            """,
        })
        findings = check(OraclePurityRule(), paths=("orc",))
        assert len(findings) == 1
        assert "telemetry" in findings[0].message

    def test_traced_scalar_kwarg_registers_a_local_root(
        self, make_tree
    ):
        make_tree({
            "orc/__init__.py": "",
            "orc/reg.py": """
                import numpy as np

                def walker(values):
                    return np.random.rand(len(values))

                def register(**kwargs):
                    return kwargs

                register(traced_scalar=walker)
            """,
        })
        findings = check(OraclePurityRule(), paths=("orc",))
        assert len(findings) == 1
        assert "oracle orc.reg.walker" in findings[0].message

    def test_traced_scalar_kwarg_registers_an_imported_root(
        self, make_tree
    ):
        make_tree({
            "orc/__init__.py": "",
            "orc/impure.py": """
                import numpy as np

                def walker(values):
                    return np.random.rand(len(values))
            """,
            "orc/reg.py": """
                from orc.impure import walker

                def register(**kwargs):
                    return kwargs

                register(traced_scalar=walker)
            """,
        })
        findings = check(OraclePurityRule(), paths=("orc",))
        assert len(findings) == 1
        assert "oracle orc.impure.walker" in findings[0].message

    def test_noqa_quarantines_a_reviewed_site(self, make_tree):
        make_tree({
            "orc/__init__.py": "",
            "orc/algo.py": """
                import numpy as np

                def count_reference(values, acc):
                    np.add.at(acc, values, 1)  # repro: noqa[REP010]
                    return acc
            """,
        })
        assert findings_with_noqa(
            OraclePurityRule(), paths=("orc",)
        ) == []


# ----------------------------------------------------------------------
# Acceptance: mutations of the real tree must fail the gate
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not REPO_SRC.is_dir(), reason="repo source tree not available"
)
class TestAcceptanceMutations:
    @pytest.fixture
    def tree(self, tmp_path, monkeypatch):
        shutil.copytree(
            REPO_SRC,
            tmp_path / "src" / "repro",
            ignore=shutil.ignore_patterns("__pycache__"),
        )
        monkeypatch.chdir(tmp_path)
        return tmp_path

    def mutate(self, tree, relpath, old, new):
        path = tree / relpath
        text = path.read_text()
        assert old in text, f"mutation anchor missing in {relpath}"
        path.write_text(text.replace(old, new))

    def test_clean_copy_passes_strict(self, tree):
        report = run_project_lint(["src/repro"], strict=True)
        assert report.exit_code() == 0, report.render_text()

    def test_deleting_a_lock_guard_fails_the_gate(self, tree):
        self.mutate(
            tree,
            "src/repro/serve/store.py",
            "    def put(self, key: tuple, entry: StoreEntry) -> None:"
            "\n        with self.lock:",
            "    def put(self, key: tuple, entry: StoreEntry) -> None:"
            "\n        if True:",
        )
        report = run_project_lint(["src/repro"])
        assert report.exit_code() == 1
        rules = {f.rule for f in report.findings}
        assert rules == {"REP008"}
        assert any(
            f.path == "src/repro/serve/store.py"
            for f in report.findings
        )

    def test_dropping_memo_key_plumbing_fails_the_gate(self, tree):
        self.mutate(
            tree,
            "src/repro/perf/engine.py",
            "        ordering_params=dict(profile.ordering_params),\n",
            "",
        )
        report = run_project_lint(["src/repro"])
        assert report.exit_code() == 1
        rules = {f.rule for f in report.findings}
        assert rules == {"REP009"}
        assert any(
            "'ordering_params'" in f.message
            and "sweep-engine cell" in f.message
            for f in report.findings
        )
