"""Core machinery: findings, severities, the registry, suppression."""

import pytest

from repro.analysis import (
    ALL_RULES,
    RULES,
    AnalysisError,
    FileContext,
    Finding,
    Rule,
    Severity,
    all_rules,
    noqa_directives,
    register,
    suppressed,
)


class TestSeverity:
    def test_labels_round_trip(self):
        for severity in Severity:
            assert Severity.from_label(severity.label) is severity

    def test_unknown_label_raises(self):
        with pytest.raises(AnalysisError, match="unknown severity"):
            Severity.from_label("fatal")

    def test_ordering_follows_badness(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR


class TestFinding:
    def make(self, **overrides):
        payload = dict(
            path="src/x.py",
            line=3,
            rule="REP001",
            message="boom",
            snippet="x = 1",
            severity=Severity.ERROR,
        )
        payload.update(overrides)
        return Finding(**payload)

    def test_describe_format(self):
        text = self.make().describe()
        assert text == "src/x.py:3: REP001 [error] boom"

    def test_key_ignores_line_number(self):
        assert self.make(line=3).key == self.make(line=99).key

    def test_to_dict_schema(self):
        payload = self.make().to_dict()
        assert payload == {
            "path": "src/x.py",
            "line": 3,
            "rule": "REP001",
            "severity": "error",
            "message": "boom",
            "snippet": "x = 1",
        }

    def test_sorts_by_path_then_line(self):
        findings = [
            self.make(path="b.py", line=1),
            self.make(path="a.py", line=9),
            self.make(path="a.py", line=2),
        ]
        ordered = sorted(findings)
        assert [(f.path, f.line) for f in ordered] == [
            ("a.py", 2), ("a.py", 9), ("b.py", 1),
        ]


class TestFileContext:
    def test_syntax_error_raises_analysis_error(self):
        with pytest.raises(AnalysisError, match="cannot parse"):
            FileContext.parse("bad.py", "def f(:\n")

    def test_snippet_out_of_range_is_empty(self):
        ctx = FileContext.parse("ok.py", "x = 1\n")
        assert ctx.snippet(1) == "x = 1"
        assert ctx.snippet(99) == ""


class TestRegistry:
    def test_seven_rules_registered(self):
        rules = all_rules()
        assert [rule.id for rule in rules] == [
            "REP001", "REP002", "REP003",
            "REP004", "REP005", "REP006", "REP007",
        ]

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.title
            assert rule.rationale

    def test_register_rejects_malformed_id(self):
        class BadId(Rule):
            id = "XXX1"

        with pytest.raises(AnalysisError, match="REPnnn"):
            register(BadId)
        assert "XXX1" not in RULES

    def test_register_rejects_duplicate_id(self):
        class Clone(Rule):
            id = "REP001"

        with pytest.raises(AnalysisError, match="duplicate"):
            register(Clone)


class TestNoqaDirectives:
    def test_bare_and_targeted_directives(self):
        directives = noqa_directives([
            "x = 1  # repro: noqa",
            "y = 2  # repro: noqa[REP001, REP002]",
            "z = 3",
        ])
        assert directives[1] is ALL_RULES
        assert directives[2] == frozenset({"REP001", "REP002"})
        assert 3 not in directives

    def test_suppressed_matches_rule_and_line(self):
        finding = Finding(
            path="x.py", line=2, rule="REP001", message="m"
        )
        covered = {2: frozenset({"REP001"})}
        elsewhere = {5: frozenset({"REP001"})}
        other_rule = {2: frozenset({"REP006"})}
        assert suppressed(finding, covered)
        assert not suppressed(finding, elsewhere)
        assert not suppressed(finding, other_rule)
