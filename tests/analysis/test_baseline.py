"""Baseline grandfathering: round-trip, multiplicity, staleness."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    BASELINE_VERSION,
    AnalysisError,
    Baseline,
    Finding,
)


def make_finding(line=3, rule="REP001", snippet="x = rand()"):
    return Finding(
        path="src/x.py",
        line=line,
        rule=rule,
        message="boom",
        snippet=snippet,
    )


class TestRoundTrip:
    def test_save_load_apply(self, tmp_path):
        findings = [make_finding(), make_finding(rule="REP006")]
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)

        match = Baseline.load(path).apply(findings)
        assert match.new == []
        assert sorted(match.suppressed) == sorted(findings)
        assert match.stale == []

    def test_saved_file_is_valid_versioned_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([make_finding()]).save(path)
        payload = json.loads(path.read_text())
        assert payload["version"] == BASELINE_VERSION
        assert len(payload["findings"]) == 1
        assert not path.with_name(path.name + ".tmp").exists()

    def test_matching_ignores_line_numbers(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([make_finding(line=3)]).save(path)
        match = Baseline.load(path).apply([make_finding(line=120)])
        assert match.new == []
        assert len(match.suppressed) == 1


class TestMultiplicity:
    def test_one_entry_suppresses_one_occurrence(self):
        baseline = Baseline.from_findings([make_finding()])
        match = baseline.apply([make_finding(), make_finding(line=9)])
        assert len(match.suppressed) == 1
        assert len(match.new) == 1

    def test_unmatched_entries_are_stale(self):
        baseline = Baseline.from_findings(
            [make_finding(snippet="gone()")]
        )
        match = baseline.apply([])
        assert match.stale == [("REP001", "src/x.py", "gone()")]

    def test_different_rule_same_line_is_new(self):
        baseline = Baseline.from_findings([make_finding()])
        match = baseline.apply([make_finding(rule="REP006")])
        assert len(match.new) == 1
        assert len(match.stale) == 1


class TestRuleVersionExpiry:
    def test_from_findings_stamps_rule_versions(self):
        baseline = Baseline.from_findings(
            [make_finding()], rule_versions={"REP001": 3}
        )
        assert baseline.entries[0]["rule_version"] == 3

    def test_matching_version_suppresses(self):
        baseline = Baseline.from_findings(
            [make_finding()], rule_versions={"REP001": 2}
        )
        match = baseline.apply(
            [make_finding()], rule_versions={"REP001": 2}
        )
        assert match.new == []
        assert match.expired == []

    def test_version_bump_expires_the_entry(self):
        """A bumped rule must be re-reviewed, not grandfathered."""
        baseline = Baseline.from_findings(
            [make_finding()], rule_versions={"REP001": 1}
        )
        match = baseline.apply(
            [make_finding()], rule_versions={"REP001": 2}
        )
        assert len(match.new) == 1
        assert match.suppressed == []
        key = ("REP001", "src/x.py", "x = rand()")
        assert match.expired == [key]
        assert match.stale == [key]

    def test_v1_file_loads_and_entries_stay_current(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "findings": [{
                "rule": "REP001",
                "path": "src/x.py",
                "line": 3,
                "snippet": "x = rand()",
            }],
        }))
        baseline = Baseline.load(path)
        match = baseline.apply(
            [make_finding()], rule_versions={"REP001": 7}
        )
        assert match.new == []
        assert len(match.suppressed) == 1

    def test_v1_file_migrates_to_v2_on_save(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "findings": [],
        }))
        baseline = Baseline.load(path)
        baseline.save(path)
        assert json.loads(path.read_text())["version"] == 2

    def test_committed_baseline_round_trips(self, tmp_path):
        committed = (
            Path(__file__).resolve().parents[2] / "lint_baseline.json"
        )
        if not committed.exists():
            pytest.skip("no committed baseline")
        baseline = Baseline.load(committed)
        copy = tmp_path / "baseline.json"
        baseline.save(copy)
        assert Baseline.load(copy).entries == baseline.entries
        assert json.loads(copy.read_text())["version"] == (
            BASELINE_VERSION
        )


class TestSchemaValidation:
    def test_unparseable_json_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(AnalysisError, match="cannot read"):
            Baseline.load(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(AnalysisError, match="not a version"):
            Baseline.load(path)

    def test_malformed_entry_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": BASELINE_VERSION,
            "findings": [{"rule": 17}],
        }))
        with pytest.raises(AnalysisError, match="malformed"):
            Baseline.load(path)

    def test_non_integer_rule_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": BASELINE_VERSION,
            "findings": [{
                "rule": "REP001",
                "path": "src/x.py",
                "rule_version": "two",
            }],
        }))
        with pytest.raises(AnalysisError, match="malformed"):
            Baseline.load(path)
