"""Shared fixture: write a synthetic package tree and chdir into it.

Project-mode tests need real files on disk (module names come from
the ``__init__.py`` chain, display paths are cwd-relative), so each
test builds a throwaway mini-package under ``tmp_path``.
"""

import textwrap

import pytest


@pytest.fixture
def make_tree(tmp_path, monkeypatch):
    """``make_tree({relpath: source, ...})`` -> tree root (cwd)."""

    def build(files):
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        monkeypatch.chdir(tmp_path)
        return tmp_path

    return build
