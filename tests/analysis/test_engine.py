"""Engine behaviour: file discovery, reports, exit-code contract."""

import json

import pytest

from repro.analysis import (
    AnalysisError,
    Baseline,
    LintReport,
    Severity,
    analyze_file,
    analyze_source,
    iter_python_files,
    run_lint,
)

DIRTY = "import numpy as np\n\nx = np.random.rand(3)\n"
CLEAN = "import numpy as np\n\nrng = np.random.default_rng(0)\n"
WARN_ONLY = "import numpy as np\n\ntotal = np.zeros(4, dtype=np.int32)\n"


class TestFileDiscovery:
    def test_expands_directories_sorted_and_deduplicated(
        self, tmp_path
    ):
        (tmp_path / "b.py").write_text(CLEAN)
        (tmp_path / "a.py").write_text(CLEAN)
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "c.py").write_text(CLEAN)
        files = iter_python_files(
            [str(tmp_path), str(tmp_path / "a.py")]
        )
        assert [f.name for f in files] == ["a.py", "b.py", "c.py"]

    def test_skips_cache_directories(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text(DIRTY)
        (tmp_path / "real.py").write_text(CLEAN)
        files = iter_python_files([str(tmp_path)])
        assert [f.name for f in files] == ["real.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(AnalysisError, match="no such file"):
            iter_python_files([str(tmp_path / "absent")])


class TestAnalyze:
    def test_analyze_source_returns_sorted_findings(self):
        source = (
            "import numpy as np\n"
            "\n"
            "def f(path):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write('x')\n"
            "\n"
            "x = np.random.rand(3)\n"
        )
        findings = analyze_source(source)
        assert [f.rule for f in findings] == ["REP002", "REP001"]
        assert findings == sorted(findings)

    def test_analyze_file_reports_unreadable_files(self, tmp_path):
        with pytest.raises(AnalysisError, match="cannot read"):
            analyze_file(tmp_path / "absent.py")

    def test_syntax_error_raises_with_location(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(:\n")
        with pytest.raises(AnalysisError, match="cannot parse"):
            analyze_file(bad)


class TestExitCodeContract:
    def test_errors_fail_regardless_of_strict(self):
        finding = analyze_source(DIRTY)[0]
        report = LintReport(findings=[finding])
        assert report.exit_code() == 1

    def test_warnings_pass_unless_strict(self):
        finding = analyze_source(WARN_ONLY)[0]
        assert finding.severity is Severity.WARNING
        assert LintReport(findings=[finding]).exit_code() == 0
        assert (
            LintReport(findings=[finding], strict=True).exit_code()
            == 1
        )

    def test_stale_baseline_fails_only_under_strict(self):
        stale = [("REP001", "x.py", "gone()")]
        assert LintReport(stale_baseline=stale).exit_code() == 0
        assert (
            LintReport(stale_baseline=stale, strict=True).exit_code()
            == 1
        )

    def test_clean_report_passes_strict(self):
        assert LintReport(strict=True).exit_code() == 0


class TestRunLint:
    def test_findings_without_baseline(self, tmp_path):
        (tmp_path / "dirty.py").write_text(DIRTY)
        report = run_lint([str(tmp_path)])
        assert [f.rule for f in report.findings] == ["REP001"]
        assert report.files_checked == 1
        assert report.exit_code() == 1

    def test_missing_baseline_file_means_empty(self, tmp_path):
        (tmp_path / "clean.py").write_text(CLEAN)
        report = run_lint(
            [str(tmp_path)],
            baseline_path=tmp_path / "absent.json",
        )
        assert report.exit_code() == 0

    def test_baseline_suppresses_known_findings(self, tmp_path):
        (tmp_path / "dirty.py").write_text(DIRTY)
        findings = run_lint([str(tmp_path)]).findings
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(baseline_path)

        report = run_lint(
            [str(tmp_path)], baseline_path=baseline_path
        )
        assert report.findings == []
        assert len(report.baselined) == 1
        assert report.exit_code() == 0

    def test_malformed_baseline_raises(self, tmp_path):
        (tmp_path / "clean.py").write_text(CLEAN)
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text("[]")
        with pytest.raises(AnalysisError):
            run_lint([str(tmp_path)], baseline_path=baseline_path)


class TestReportRendering:
    def test_text_report_lists_findings_and_summary(self, tmp_path):
        (tmp_path / "dirty.py").write_text(DIRTY)
        report = run_lint([str(tmp_path)])
        text = report.render_text()
        assert "REP001" in text
        assert "1 file(s) checked" in text

    def test_json_schema(self, tmp_path):
        (tmp_path / "dirty.py").write_text(DIRTY)
        report = run_lint([str(tmp_path)], strict=True)
        payload = json.loads(report.render_json())
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["strict"] is True
        assert payload["exit_code"] == 1
        assert payload["stale_baseline"] == []
        assert payload["baselined"] == []
        (finding,) = payload["findings"]
        assert finding["rule"] == "REP001"
        assert finding["severity"] == "error"
        assert finding["snippet"] == "x = np.random.rand(3)"
        assert "summary" in payload
