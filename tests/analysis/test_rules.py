"""Per-rule fixtures: each REP rule fires on the bad spelling and
stays quiet on the sanctioned one."""

import textwrap

from repro.analysis import Severity, analyze_source


def rule_ids(source, path="fixture.py"):
    """Rule ids found in a dedented source snippet."""
    findings = analyze_source(textwrap.dedent(source), path=path)
    return [finding.rule for finding in findings]


class TestRep001UnseededRandom:
    def test_legacy_numpy_random_fires(self):
        assert rule_ids(
            """
            import numpy as np

            x = np.random.rand(3)
            """
        ) == ["REP001"]

    def test_unseeded_default_rng_fires(self):
        assert rule_ids(
            """
            from numpy.random import default_rng

            rng = default_rng()
            """
        ) == ["REP001"]

    def test_seeded_default_rng_is_clean(self):
        assert rule_ids(
            """
            import numpy as np

            rng = np.random.default_rng(42)
            """
        ) == []

    def test_stdlib_module_level_random_fires(self):
        assert rule_ids(
            """
            import random

            x = random.random()
            """
        ) == ["REP001"]

    def test_unseeded_stdlib_random_instance_fires(self):
        assert rule_ids(
            """
            import random

            rng = random.Random()
            """
        ) == ["REP001"]

    def test_seeded_stdlib_random_instance_is_clean(self):
        assert rule_ids(
            """
            import random

            rng = random.Random(7)
            """
        ) == []

    def test_generator_method_calls_are_clean(self):
        assert rule_ids(
            """
            import numpy as np

            rng = np.random.default_rng(0)
            x = rng.integers(0, 10, size=4)
            """
        ) == []


class TestRep002NonAtomicWrite:
    def test_truncating_open_fires(self):
        assert rule_ids(
            """
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """
        ) == ["REP002"]

    def test_path_write_text_fires(self):
        assert rule_ids(
            """
            from pathlib import Path

            def save(path):
                Path(path).write_text("x")
            """
        ) == ["REP002"]

    def test_numpy_save_fires(self):
        assert rule_ids(
            """
            import numpy as np

            def save(path, array):
                np.save(path, array)
            """
        ) == ["REP002"]

    def test_append_mode_is_exempt(self):
        assert rule_ids(
            """
            def journal(path, line):
                with open(path, "a") as handle:
                    handle.write(line)
            """
        ) == []

    def test_read_mode_is_exempt(self):
        assert rule_ids(
            """
            def load(path):
                with open(path, "r") as handle:
                    return handle.read()
            """
        ) == []

    def test_tmp_plus_os_replace_scope_is_atomic(self):
        assert rule_ids(
            """
            import os

            def save(path, text):
                tmp = str(path) + ".tmp"
                with open(tmp, "w") as handle:
                    handle.write(text)
                os.replace(tmp, path)
            """
        ) == []

    def test_atomic_helper_scope_is_clean(self):
        assert rule_ids(
            """
            from repro.ioutil import atomic_open

            def save(path, text):
                with atomic_open(path, "w") as handle:
                    handle.write(text)
            """
        ) == []

    def test_other_scopes_do_not_leak_atomicity(self):
        # os.replace in one function must not bless writes in another.
        assert rule_ids(
            """
            import os

            def atomic(path, tmp):
                os.replace(tmp, path)

            def sloppy(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """
        ) == ["REP002"]


class TestRep003SwallowedException:
    def test_bare_except_pass_fires(self):
        assert rule_ids(
            """
            def run(step):
                try:
                    step()
                except:
                    pass
            """
        ) == ["REP003"]

    def test_broad_except_fires(self):
        assert rule_ids(
            """
            def run(step):
                try:
                    step()
                except Exception:
                    result = None
            """
        ) == ["REP003"]

    def test_broad_tuple_fires(self):
        assert rule_ids(
            """
            def run(step):
                try:
                    step()
                except (ValueError, Exception):
                    pass
            """
        ) == ["REP003"]

    def test_reraise_is_clean(self):
        assert rule_ids(
            """
            def run(step):
                try:
                    step()
                except Exception:
                    raise
            """
        ) == []

    def test_narrow_handler_is_clean(self):
        assert rule_ids(
            """
            def run(step):
                try:
                    step()
                except ValueError:
                    pass
            """
        ) == []

    def test_telemetry_event_is_clean(self):
        assert rule_ids(
            """
            from repro import obs

            def run(step):
                try:
                    step()
                except Exception as exc:
                    obs.event("run.error", error=type(exc).__name__)
            """
        ) == []

    def test_structured_failure_record_is_clean(self):
        assert rule_ids(
            """
            def run(step, failures):
                try:
                    step()
                except Exception as exc:
                    failures.append(CellFailure(error=str(exc)))
            """
        ) == []

    def test_logger_exception_is_clean(self):
        assert rule_ids(
            """
            import logging

            def run(step):
                try:
                    step()
                except Exception:
                    logging.getLogger(__name__).exception("boom")
            """
        ) == []


class TestRep004NarrowDtype:
    def test_narrow_reduction_dtype_fires(self):
        assert rule_ids(
            """
            import numpy as np

            def count(x):
                return x.sum(dtype=np.int32)
            """
        ) == ["REP004"]

    def test_string_dtype_spelling_fires(self):
        assert rule_ids(
            """
            def count(x):
                return x.cumsum(dtype="uint16")
            """
        ) == ["REP004"]

    def test_narrow_accumulator_buffer_fires(self):
        assert rule_ids(
            """
            import numpy as np

            total_cycles = np.zeros(8, dtype=np.int32)
            """
        ) == ["REP004"]

    def test_wide_accumulator_is_clean(self):
        assert rule_ids(
            """
            import numpy as np

            total_cycles = np.zeros(8, dtype=np.int64)
            """
        ) == []

    def test_non_accumulator_name_is_clean(self):
        # Narrow dtypes are fine for bounded payloads; only names that
        # look like running totals are held to int64.
        assert rule_ids(
            """
            import numpy as np

            node_ids = np.zeros(8, dtype=np.int32)
            """
        ) == []

    def test_reduction_without_dtype_is_clean(self):
        assert rule_ids(
            """
            def count(x):
                return x.sum()
            """
        ) == []

    def test_severity_is_warning(self):
        findings = analyze_source(
            "import numpy as np\n"
            "total = np.zeros(4, dtype=np.int32)\n"
        )
        assert [f.severity for f in findings] == [Severity.WARNING]


class TestRep005TelemetryDiscipline:
    def test_unmanaged_span_fires(self):
        assert rule_ids(
            """
            from repro import obs

            def work():
                span = obs.span("work")
                span.close()
            """
        ) == ["REP005"]

    def test_with_span_is_clean(self):
        assert rule_ids(
            """
            from repro import obs

            def work():
                with obs.span("work"):
                    pass
            """
        ) == []

    def test_returned_span_is_clean(self):
        # Wrappers may forward a span for the caller to enter.
        assert rule_ids(
            """
            from repro import obs

            def timed(name):
                return obs.span(name)
            """
        ) == []

    def test_second_registry_fires(self):
        assert rule_ids(
            """
            from repro.obs import Telemetry

            REGISTRY = Telemetry()
            """
        ) == ["REP005"]

    def test_fully_dynamic_counter_name_fires(self):
        assert rule_ids(
            """
            from repro import obs

            def bump(name):
                obs.inc(name)
            """
        ) == ["REP005"]

    def test_literal_counter_name_is_clean(self):
        assert rule_ids(
            """
            from repro import obs

            def bump():
                obs.inc("cache.hits")
            """
        ) == []

    def test_fstring_with_literal_segment_is_clean(self):
        assert rule_ids(
            """
            from repro import obs

            def bump(level):
                obs.inc(f"cache.{level}.hits")
            """
        ) == []

    def test_obs_package_itself_is_exempt(self):
        source = """
        def span(name):
            span = make_span(name)
            return span
        """
        assert rule_ids(source, path="src/repro/obs/core.py") == []

    def test_unmanaged_profile_fires(self):
        assert rule_ids(
            """
            from repro import obs

            def work():
                phase = obs.profile("gorder.phase")
                phase.close()
            """
        ) == ["REP005"]

    def test_with_profile_is_clean(self):
        assert rule_ids(
            """
            from repro import obs

            def work():
                with obs.profile("gorder.phase", n=5):
                    pass
            """
        ) == []

    def test_returned_profile_is_clean(self):
        assert rule_ids(
            """
            from repro import obs

            def timed(n):
                return obs.profile("gorder.phase", n=n)
            """
        ) == []

    def test_fully_dynamic_profile_name_fires(self):
        assert rule_ids(
            """
            from repro import obs

            def work(name):
                with obs.profile(name):
                    pass
            """
        ) == ["REP005"]

    def test_profile_fstring_literal_segment_is_clean(self):
        assert rule_ids(
            """
            from repro import obs

            def work(part):
                with obs.profile(f"gorder.part.{part}"):
                    pass
            """
        ) == []


class TestRep006ForeignException:
    def test_builtin_raise_fires(self):
        assert rule_ids(
            """
            def check(n):
                if n < 0:
                    raise ValueError(f"negative: {n}")
            """
        ) == ["REP006"]

    def test_bare_builtin_class_fires(self):
        assert rule_ids(
            """
            def nope():
                raise RuntimeError
            """
        ) == ["REP006"]

    def test_repro_error_is_clean(self):
        assert rule_ids(
            """
            from repro.errors import InvalidParameterError

            def check(n):
                if n < 0:
                    raise InvalidParameterError(f"negative: {n}")
            """
        ) == []

    def test_allowed_builtins_are_clean(self):
        assert rule_ids(
            """
            def protocol():
                raise NotImplementedError

            def generator():
                raise StopIteration
            """
        ) == []

    def test_plain_reraise_is_clean(self):
        assert rule_ids(
            """
            def run(step):
                try:
                    step()
                except ValueError:
                    raise
            """
        ) == []


class TestRep007ScalarTouchLoop:
    PATH = "src/repro/algorithms/fixture.py"

    def test_touch_in_loop_fires(self):
        assert rule_ids(
            """
            def run(traced, nodes):
                for u in nodes:
                    traced.touch(u)
            """,
            path=self.PATH,
        ) == ["REP007"]

    def test_aliased_touch_in_loop_fires(self):
        assert rule_ids(
            """
            def run(traced, nodes):
                probe = traced.touch
                while nodes:
                    probe(nodes.pop())
            """,
            path=self.PATH,
        ) == ["REP007"]

    def test_tuple_unpacked_alias_in_loop_fires(self):
        """Regression: aliases bound by tuple unpacking were lost."""
        assert rule_ids(
            """
            def run(a, b, nodes):
                ta, tb = a.touch, b.touch
                for u in nodes:
                    ta(u)
            """,
            path=self.PATH,
        ) == ["REP007"]

    def test_nested_tuple_unpacked_alias_fires(self):
        assert rule_ids(
            """
            def run(a, b, nodes):
                (ta, tb), n = (a.touch, b.touch), len(nodes)
                while nodes:
                    tb(nodes.pop())
            """,
            path=self.PATH,
        ) == ["REP007"]

    def test_starred_unpacking_does_not_crash_or_misbind(self):
        assert rule_ids(
            """
            def run(a, rest, nodes):
                ta, *others = a.touch, rest
                for u in nodes:
                    others[0](u)
            """,
            path=self.PATH,
        ) == []

    def test_touch_outside_loop_is_clean(self):
        assert rule_ids(
            """
            def run(traced, source):
                traced.touch(source)
            """,
            path=self.PATH,
        ) == []

    def test_batch_apis_in_loop_are_clean(self):
        assert rule_ids(
            """
            def run(traced, levels):
                for level in levels:
                    traced.touch_many(level)
                    traced.touch_runs(level, level)
            """,
            path=self.PATH,
        ) == []

    def test_other_modules_are_exempt(self):
        assert rule_ids(
            """
            def run(traced, nodes):
                for u in nodes:
                    traced.touch(u)
            """,
            path="src/repro/cache/fixture.py",
        ) == []

    def test_noqa_marks_the_oracle_path(self):
        assert rule_ids(
            """
            def run(traced, nodes):
                for u in nodes:
                    traced.touch(u)  # repro: noqa[REP007]
            """,
            path=self.PATH,
        ) == []

    def test_severity_is_warning(self):
        findings = analyze_source(
            textwrap.dedent(
                """
                def run(traced, nodes):
                    for u in nodes:
                        traced.touch(u)
                """
            ),
            path=self.PATH,
        )
        assert [f.severity for f in findings] == [Severity.WARNING]


class TestNoqaSuppression:
    def test_bare_noqa_suppresses_everything_on_the_line(self):
        assert rule_ids(
            """
            import numpy as np

            x = np.random.rand(3)  # repro: noqa
            """
        ) == []

    def test_targeted_noqa_suppresses_only_named_rules(self):
        assert rule_ids(
            """
            import numpy as np

            x = np.random.rand(3)  # repro: noqa[REP001]
            """
        ) == []

    def test_wrong_rule_id_does_not_suppress(self):
        assert rule_ids(
            """
            import numpy as np

            x = np.random.rand(3)  # repro: noqa[REP002]
            """
        ) == ["REP001"]

    def test_noqa_is_case_insensitive(self):
        assert rule_ids(
            """
            import numpy as np

            x = np.random.rand(3)  # REPRO: NOQA[rep001]
            """
        ) == []

    def test_noqa_only_covers_its_own_line(self):
        assert rule_ids(
            """
            import numpy as np

            # repro: noqa[REP001]
            x = np.random.rand(3)
            """
        ) == ["REP001"]
