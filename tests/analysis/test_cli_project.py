"""CLI surfaces of the project layer: lint --project and deps."""

import json
from pathlib import Path

from repro.cli import main

CLEAN_TREE = {
    "pkg/__init__.py": "",
    "pkg/a.py": """
        from pkg.b import helper

        def run(x):
            return helper(x)
    """,
    "pkg/b.py": """
        def helper(x):
            return x + 1
    """,
}

RACY_TREE = {
    "pkg/__init__.py": "",
    "pkg/box.py": """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def add(self, item):
                with self._lock:
                    self._items.append(item)

            def drop(self):
                self._items.clear()
    """,
}

CYCLIC_TREE = {
    "pkg/__init__.py": "",
    "pkg/a.py": "import pkg.b\n",
    "pkg/b.py": "import pkg.a\n",
}


class TestLintProject:
    def test_clean_tree_exits_zero(self, make_tree, capsys):
        make_tree(CLEAN_TREE)
        assert main(["lint", "--project", "pkg"]) == 0
        assert "project mode" in capsys.readouterr().out

    def test_race_exits_one(self, make_tree, capsys):
        make_tree(RACY_TREE)
        assert main(["lint", "--project", "pkg"]) == 1
        assert "REP008" in capsys.readouterr().out

    def test_json_reports_project_mode(self, make_tree, capsys):
        make_tree(CLEAN_TREE)
        assert main(
            ["lint", "--project", "--format", "json", "pkg"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["project"] is True
        assert payload["files_parsed"] == len(CLEAN_TREE)
        assert payload["files_cached"] == 0

    def test_cache_makes_the_second_run_warm(self, make_tree, capsys):
        make_tree(CLEAN_TREE)
        args = [
            "lint", "--project", "--cache", "cache.json",
            "--format", "json", "pkg",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_parsed"] == 0
        assert payload["files_cached"] == len(CLEAN_TREE)

    def test_write_baseline_then_gate_passes(self, make_tree, capsys):
        make_tree(RACY_TREE)
        assert main([
            "lint", "--project", "--write-baseline",
            "--baseline", "baseline.json", "pkg",
        ]) == 0
        payload = json.loads(Path("baseline.json").read_text())
        assert payload["version"] == 2
        assert all(
            isinstance(entry["rule_version"], int)
            for entry in payload["findings"]
        )
        capsys.readouterr()
        assert main([
            "lint", "--project", "--baseline", "baseline.json", "pkg",
        ]) == 0

    def test_missing_path_exits_two(self, make_tree):
        make_tree(CLEAN_TREE)
        assert main(["lint", "--project", "nowhere"]) == 2


class TestDeps:
    def test_reports_modules_and_edges(self, make_tree, capsys):
        make_tree(CLEAN_TREE)
        assert main(["deps", "pkg"]) == 0
        out = capsys.readouterr().out
        assert "modules     : 3" in out
        assert "cycles      : none" in out

    def test_show_graph_prints_edges(self, make_tree, capsys):
        make_tree(CLEAN_TREE)
        assert main(["deps", "--show-graph", "pkg"]) == 0
        assert "pkg.a -> pkg.b" in capsys.readouterr().out

    def test_check_cycles_fails_on_a_cycle(self, make_tree, capsys):
        make_tree(CYCLIC_TREE)
        assert main(["deps", "--check-cycles", "pkg"]) == 1
        assert "pkg.a <-> pkg.b" in capsys.readouterr().out

    def test_check_cycles_passes_on_a_dag(self, make_tree):
        make_tree(CLEAN_TREE)
        assert main(["deps", "--check-cycles", "pkg"]) == 0

    def test_missing_path_exits_two(self, make_tree, capsys):
        make_tree(CLEAN_TREE)
        assert main(["deps", "nowhere"]) == 2
        assert "deps error" in capsys.readouterr().err
