"""Project layer: module naming, graphs, and the incremental cache."""

import json
import time
from pathlib import Path

import pytest

from repro.analysis import ProjectAnalysis
from repro.analysis.project import module_name_for

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: A four-module package exercising plain, from-, symbol- and
#: deferred imports plus local/self/cross-module calls.
MINI_PKG = {
    "pkg/__init__.py": """
        GREETING = "hello"

        from pkg import alpha
    """,
    "pkg/alpha.py": """
        from pkg.beta import helper

        def run(x):
            return helper(x)

        def lazy():
            from pkg import gamma

            return gamma.make()
    """,
    "pkg/beta.py": """
        def helper(x):
            return x + 1

        class Counter:
            def __init__(self):
                self.total = 0

            def bump(self):
                return self._step()

            def _step(self):
                return helper(1)
    """,
    "pkg/gamma.py": """
        def make():
            return 0
    """,
    "pkg/epsilon.py": """
        from pkg import GREETING

        def greet():
            return GREETING
    """,
}


class TestModuleNaming:
    def test_package_chain(self, make_tree):
        root = make_tree(MINI_PKG)
        assert module_name_for(root / "pkg" / "alpha.py") == "pkg.alpha"

    def test_init_names_the_package(self, make_tree):
        root = make_tree(MINI_PKG)
        assert module_name_for(root / "pkg" / "__init__.py") == "pkg"

    def test_loose_file_uses_its_stem(self, make_tree):
        root = make_tree({"loose.py": "x = 1\n"})
        assert module_name_for(root / "loose.py") == "loose"

    def test_copied_tree_resolves_identically(self, make_tree):
        """Moving the tree does not change module names (CI, tmp)."""
        root = make_tree(MINI_PKG)
        project = ProjectAnalysis.build(["pkg"])
        assert "pkg.alpha" in project.facts
        assert project.facts["pkg.alpha"].path == "pkg/alpha.py"
        assert root == Path.cwd()


class TestImportGraph:
    @pytest.fixture
    def project(self, make_tree):
        make_tree(MINI_PKG)
        return ProjectAnalysis.build(["pkg"])

    def test_from_import_edges_to_the_submodule(self, project):
        graph = project.import_graph()
        assert graph["pkg.alpha"] == {"pkg.beta"}

    def test_registry_init_does_not_self_cycle(self, project):
        """``from pkg import alpha`` in pkg/__init__ must not also
        charge pkg itself — that welds registry packages into fake
        cycles."""
        graph = project.import_graph()
        assert graph["pkg"] == {"pkg.alpha"}
        assert project.import_cycles() == []

    def test_symbol_reexport_edges_to_the_package(self, project):
        graph = project.import_graph()
        assert graph["pkg.epsilon"] == {"pkg"}

    def test_deferred_import_excluded_by_default(self, project):
        graph = project.import_graph()
        assert "pkg.gamma" not in graph["pkg.alpha"]
        assert project.deferred_edges() == [("pkg.alpha", "pkg.gamma")]

    def test_deferred_import_included_on_request(self, project):
        graph = project.import_graph(include_deferred=True)
        assert "pkg.gamma" in graph["pkg.alpha"]

    def test_cycle_detection(self, make_tree):
        make_tree({
            "loop/__init__.py": "",
            "loop/a.py": "import loop.b\n",
            "loop/b.py": "import loop.a\n",
            "loop/c.py": "import loop.a\n",
        })
        project = ProjectAnalysis.build(["loop"])
        assert project.import_cycles() == [["loop.a", "loop.b"]]


class TestCallGraph:
    @pytest.fixture
    def graph(self, make_tree):
        make_tree(MINI_PKG)
        return ProjectAnalysis.build(["pkg"]).call_graph()

    def test_cross_module_call(self, graph):
        assert graph["pkg.alpha.run"] == {"pkg.beta.helper"}

    def test_deferred_module_attribute_call(self, graph):
        assert graph["pkg.alpha.lazy"] == {"pkg.gamma.make"}

    def test_self_call_resolves_to_the_method(self, graph):
        assert graph["pkg.beta.Counter.bump"] == {
            "pkg.beta.Counter._step"
        }

    def test_local_call_inside_a_method(self, graph):
        assert graph["pkg.beta.Counter._step"] == {"pkg.beta.helper"}


class TestCache:
    CACHE = "lint-cache.json"

    def build(self):
        return ProjectAnalysis.build(["pkg"], cache_path=self.CACHE)

    def test_cold_run_parses_everything(self, make_tree):
        make_tree(MINI_PKG)
        project = self.build()
        assert project.files_parsed == len(MINI_PKG)
        assert project.files_cached == 0
        assert Path(self.CACHE).exists()

    def test_warm_run_parses_nothing(self, make_tree):
        make_tree(MINI_PKG)
        cold = self.build()
        warm = self.build()
        assert warm.files_parsed == 0
        assert warm.files_cached == len(MINI_PKG)
        assert warm.modules() == cold.modules()

    def test_content_change_reparses_only_that_file(self, make_tree):
        root = make_tree(MINI_PKG)
        self.build()
        target = root / "pkg" / "gamma.py"
        target.write_text(target.read_text() + "\n\ndef more():\n    return 1\n")
        project = self.build()
        assert project.files_parsed == 1
        assert project.files_cached == len(MINI_PKG) - 1
        assert "pkg.gamma.more" in project.symbol_table()

    def test_added_file_is_parsed(self, make_tree):
        root = make_tree(MINI_PKG)
        self.build()
        (root / "pkg" / "delta.py").write_text("def extra():\n    return 2\n")
        project = self.build()
        assert project.files_parsed == 1
        assert project.files_cached == len(MINI_PKG)
        assert "pkg.delta" in project.facts

    def test_deleted_file_drops_out(self, make_tree):
        root = make_tree(MINI_PKG)
        self.build()
        (root / "pkg" / "gamma.py").unlink()
        project = self.build()
        assert "pkg.gamma" not in project.facts
        assert project.files_cached == len(MINI_PKG) - 1
        # The rewritten cache forgets the file too.
        payload = json.loads(Path(self.CACHE).read_text())
        assert "pkg/gamma.py" not in payload["files"]

    def test_corrupt_cache_degrades_to_cold_run(self, make_tree):
        make_tree(MINI_PKG)
        Path(self.CACHE).write_text("{definitely not json")
        project = self.build()
        assert project.files_parsed == len(MINI_PKG)

    def test_signature_mismatch_invalidates(self, make_tree):
        make_tree(MINI_PKG)
        self.build()
        payload = json.loads(Path(self.CACHE).read_text())
        payload["signature"] = "0" * 64
        Path(self.CACHE).write_text(json.dumps(payload))
        project = self.build()
        assert project.files_parsed == len(MINI_PKG)


@pytest.mark.skipif(
    not REPO_SRC.is_dir(), reason="repo source tree not available"
)
class TestWarmSpeedup:
    def test_warm_run_is_at_least_5x_faster(self, tmp_path):
        """Acceptance: a warm cache run beats cold by >= 5x."""
        cache = tmp_path / "cache.json"
        start = time.perf_counter()
        cold = ProjectAnalysis.build([str(REPO_SRC)], cache_path=cache)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = ProjectAnalysis.build([str(REPO_SRC)], cache_path=cache)
        warm_seconds = time.perf_counter() - start
        assert cold.files_parsed > 0
        assert warm.files_parsed == 0
        assert warm.files_cached == cold.files_parsed
        assert cold_seconds >= 5 * warm_seconds, (
            f"cold {cold_seconds:.3f}s vs warm {warm_seconds:.3f}s"
        )
