"""The ``repro-gorder lint`` subcommand: exit codes, JSON, baseline."""

import json

import pytest

from repro.cli import main

DIRTY = "import numpy as np\n\nx = np.random.rand(3)\n"
CLEAN = "import numpy as np\n\nrng = np.random.default_rng(0)\n"


@pytest.fixture()
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY)
    return path


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN)
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_file, capsys):
        code = main(["lint", "--no-baseline", str(clean_file)])
        assert code == 0
        assert "no findings" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_file, capsys):
        code = main(["lint", "--no-baseline", str(dirty_file)])
        assert code == 1
        assert "REP001" in capsys.readouterr().out

    def test_analysis_failure_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(:\n")
        code = main(["lint", "--no-baseline", str(bad)])
        assert code == 2
        assert "lint error" in capsys.readouterr().err

    def test_exit_zero_overrides_findings(self, dirty_file):
        code = main(
            ["lint", "--no-baseline", "--exit-zero", str(dirty_file)]
        )
        assert code == 0


class TestJsonOutput:
    def test_json_format_prints_machine_readable_report(
        self, dirty_file, capsys
    ):
        code = main([
            "lint", "--no-baseline", "--format", "json",
            str(dirty_file),
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 1
        assert payload["findings"][0]["rule"] == "REP001"

    def test_out_writes_json_report_file(
        self, dirty_file, tmp_path, capsys
    ):
        out = tmp_path / "findings.json"
        main([
            "lint", "--no-baseline", "--out", str(out),
            str(dirty_file),
        ])
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["findings"][0]["rule"] == "REP001"


class TestBaselineWorkflow:
    def test_write_then_lint_then_strict_stale(
        self, dirty_file, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"

        # 1. Grandfather today's findings.
        code = main([
            "lint", "--baseline", str(baseline), "--write-baseline",
            str(dirty_file),
        ])
        assert code == 0
        assert "wrote 1 grandfathered" in capsys.readouterr().out

        # 2. The gate is green while the finding is baselined.
        code = main([
            "lint", "--baseline", str(baseline), str(dirty_file)
        ])
        assert code == 0
        assert "1 baselined" in capsys.readouterr().out

        # 3. Fixing the code strands the entry; --strict flags it.
        dirty_file.write_text(CLEAN)
        code = main([
            "lint", "--baseline", str(baseline), str(dirty_file)
        ])
        assert code == 0
        code = main([
            "lint", "--baseline", str(baseline), "--strict",
            str(dirty_file),
        ])
        assert code == 1
        assert "stale baseline" in capsys.readouterr().out

    def test_no_baseline_ignores_baseline_file(
        self, dirty_file, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        main([
            "lint", "--baseline", str(baseline), "--write-baseline",
            str(dirty_file),
        ])
        code = main(["lint", "--no-baseline", str(dirty_file)])
        assert code == 1
