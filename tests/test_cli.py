"""Smoke tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in (
            ["datasets"],
            ["order", "--dataset", "epinion"],
            ["run", "--dataset", "epinion"],
        ):
            assert parser.parse_args(command).command == command[0]


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "epinion" in output
        assert "sdarc" in output

    def test_order_to_stdout(self, capsys):
        assert main(
            ["order", "--dataset", "epinion", "--ordering", "indegsort"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert sorted(int(line) for line in lines) == list(
            range(len(lines))
        )

    def test_order_to_file(self, tmp_path, capsys):
        target = tmp_path / "perm.txt"
        assert main(
            [
                "order", "--dataset", "epinion",
                "--ordering", "rcm", "-o", str(target),
            ]
        ) == 0
        perm = np.loadtxt(target, dtype=np.int64)
        assert sorted(perm.tolist()) == list(range(perm.shape[0]))

    def test_order_from_edge_list(self, tmp_path, capsys):
        edge_file = tmp_path / "edges.txt"
        edge_file.write_text("0 1\n1 2\n2 0\n")
        assert main(
            ["order", "--input", str(edge_file), "--ordering", "chdfs"]
        ) == 0

    def test_run(self, capsys):
        assert main(
            [
                "run", "--dataset", "epinion",
                "--algorithm", "nq", "--ordering", "gorder",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "cycles" in output
        assert "L1 miss rate" in output

    def test_cache_stats(self, capsys):
        assert main(["cache-stats", "--dataset", "epinion"]) == 0
        output = capsys.readouterr().out
        assert "L1-mr" in output
        assert "gorder" in output

    def test_window(self, capsys):
        assert main(["window", "--dataset", "epinion"]) == 0
        assert "window" in capsys.readouterr().out

    def test_annealing(self, capsys):
        assert main(["annealing", "--dataset", "epinion"]) == 0
        assert "energy" in capsys.readouterr().out

    def test_error_reported_cleanly(self, capsys):
        assert main(["run", "--dataset", "doesnotexist"]) == 1
        assert "error" in capsys.readouterr().err

    def test_stats_single_dataset(self, capsys):
        assert main(["stats", "--dataset", "epinion"]) == 0
        output = capsys.readouterr().out
        assert "reciprocity" in output
        assert "epinion" in output

    def test_stats_all_datasets(self, capsys):
        assert main(["stats"]) == 0
        output = capsys.readouterr().out
        assert "sdarc" in output

    def test_stats_from_file(self, tmp_path, capsys):
        edge_file = tmp_path / "edges.txt"
        edge_file.write_text("0 1\n1 2\n2 0\n")
        assert main(["stats", "--input", str(edge_file)]) == 0
        assert "edges" in capsys.readouterr().out

    def test_compress(self, capsys):
        assert main(["compress", "--dataset", "epinion"]) == 0
        output = capsys.readouterr().out
        assert "bits/edge" in output
        assert "gorder" in output

    def test_reuse(self, capsys):
        assert main(
            [
                "reuse", "--dataset", "epinion",
                "--algorithm", "nq", "--ordering", "rcm",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "median RD" in output
        assert "miss rate" in output

    def test_evaluate(self, capsys):
        assert main(["evaluate", "--dataset", "epinion"]) == 0
        output = capsys.readouterr().out
        assert "F(pi)" in output
        assert "bits/edge" in output


class TestCacheBackendFlag:
    def test_parser_accepts_backends(self):
        parser = build_parser()
        args = parser.parse_args(
            ["run", "--dataset", "epinion", "--cache-backend", "step"]
        )
        assert args.cache_backend == "step"
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["run", "--dataset", "epinion",
                 "--cache-backend", "magic"]
            )

    def test_run_backends_agree(self, capsys):
        outputs = []
        for backend in ("step", "replay"):
            assert main(
                ["run", "--dataset", "epinion",
                 "--algorithm", "nq", "--ordering", "gorder",
                 "--cache-backend", backend]
            ) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert "cycles" in outputs[0]
