"""Public API contract: exports exist, are documented, and stay sane."""

import inspect

import pytest

import repro
from repro import algorithms, cache, graph, ordering, perf

PACKAGES = [repro, graph, cache, ordering, algorithms, perf]


class TestExports:
    @pytest.mark.parametrize(
        "package", PACKAGES, ids=lambda p: p.__name__
    )
    def test_all_names_resolve(self, package):
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), (
                f"{package.__name__}.__all__ lists missing {name!r}"
            )

    @pytest.mark.parametrize(
        "package", PACKAGES, ids=lambda p: p.__name__
    )
    def test_public_callables_documented(self, package):
        undocumented = []
        for name in getattr(package, "__all__", []):
            member = getattr(package, name)
            if inspect.isfunction(member) or inspect.isclass(member):
                if not (member.__doc__ or "").strip():
                    undocumented.append(f"{package.__name__}.{name}")
        assert not undocumented, (
            "public items without docstrings: "
            + ", ".join(undocumented)
        )

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_registries_consistent(self):
        from repro.algorithms import ALGORITHM_NAMES, REGISTRY as ALGOS
        from repro.ordering import ORDERING_NAMES, REGISTRY as ORDERS

        assert set(ALGORITHM_NAMES) <= set(ALGOS)
        assert set(ORDERING_NAMES) <= set(ORDERS)
        # Display names are unique within each registry.
        assert len({a.display_name for a in ALGOS.values()}) == len(ALGOS)
        assert len({o.display_name for o in ORDERS.values()}) == len(
            ORDERS
        )

    def test_module_docstrings(self):
        import pkgutil

        missing = []
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = __import__(
                module_info.name, fromlist=["_"]
            )
            if not (module.__doc__ or "").strip():
                missing.append(module_info.name)
        assert not missing, f"modules without docstrings: {missing}"
