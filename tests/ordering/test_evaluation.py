"""Tests for the one-call ordering evaluation bundle."""

import numpy as np
import pytest

from repro.errors import InvalidPermutationError
from repro.graph import generators, identity_permutation
from repro.ordering import (
    OrderingEvaluation,
    evaluate_all,
    evaluate_ordering,
    gorder_order,
)


@pytest.fixture(scope="module")
def graph():
    return generators.web_graph(
        500, pages_per_host=50, out_degree=6, seed=29
    )


class TestEvaluateOrdering:
    def test_fields_populated(self, graph):
        evaluation = evaluate_ordering(
            graph, identity_permutation(graph.num_nodes),
            name="original",
        )
        assert evaluation.ordering == "original"
        assert evaluation.gorder_f > 0
        assert evaluation.minla > 0
        assert evaluation.bits_per_edge > 0
        assert 0 <= evaluation.l1_miss_rate <= 1
        assert evaluation.probe_cycles > 0

    def test_gorder_beats_identity_on_objective(self, graph):
        identity = evaluate_ordering(
            graph, identity_permutation(graph.num_nodes)
        )
        gorder = evaluate_ordering(graph, gorder_order(graph))
        assert gorder.gorder_f >= identity.gorder_f

    def test_invalid_permutation_rejected(self, graph):
        with pytest.raises(InvalidPermutationError):
            evaluate_ordering(
                graph, np.zeros(graph.num_nodes, dtype=np.int64)
            )

    def test_row_matches_headers(self, graph):
        evaluation = evaluate_ordering(
            graph, identity_permutation(graph.num_nodes)
        )
        assert len(evaluation.as_row()) == len(
            OrderingEvaluation.headers()
        )


class TestEvaluateAll:
    def test_subset_sweep(self, graph):
        evaluations = evaluate_all(
            graph, ["original", "random", "gorder"], seed=1
        )
        names = [evaluation.ordering for evaluation in evaluations]
        assert set(names) == {"original", "random", "gorder"}
        # Sorted by probe cycles, fastest first.
        cycles = [e.probe_cycles for e in evaluations]
        assert cycles == sorted(cycles)

    def test_gorder_probe_beats_random(self, graph):
        evaluations = {
            e.ordering: e
            for e in evaluate_all(graph, ["random", "gorder"], seed=1)
        }
        assert (
            evaluations["gorder"].probe_cycles
            < evaluations["random"].probe_cycles
        )


class TestBackendPlumbing:
    """Regression tests: the evaluation bundle must honour the cache
    and algorithm backend arguments instead of silently probing with
    the defaults, and must report how long each ordering took."""

    def test_probe_counter_identity_replay_vs_step(self, graph):
        from repro.ordering import probe_arrangement
        from repro.graph import identity_permutation

        perm = identity_permutation(graph.num_nodes)
        step_cycles, step_stats = probe_arrangement(
            graph, perm, cache_backend="step"
        )
        replay_cycles, replay_stats = probe_arrangement(
            graph, perm, cache_backend="replay"
        )
        assert step_cycles == replay_cycles
        assert step_stats == replay_stats

    def test_evaluate_ordering_accepts_backends(self, graph):
        from repro.graph import identity_permutation

        perm = identity_permutation(graph.num_nodes)
        step = evaluate_ordering(graph, perm, cache_backend="step")
        replay = evaluate_ordering(graph, perm, cache_backend="replay")
        assert step.probe_cycles == replay.probe_cycles
        assert step.l1_miss_rate == replay.l1_miss_rate

    def test_ordering_seconds_recorded(self, graph):
        import math

        rows = evaluate_all(graph, ["original", "gorder"], seed=0)
        for row in rows:
            assert math.isfinite(row.ordering_seconds)
            assert row.ordering_seconds >= 0

    def test_ordering_seconds_defaults_to_nan(self, graph):
        import math
        from repro.graph import identity_permutation

        evaluation = evaluate_ordering(
            graph, identity_permutation(graph.num_nodes)
        )
        assert math.isnan(evaluation.ordering_seconds)
        # NaN renders as a placeholder, not "nan".
        row = evaluation.as_row()
        assert "nan" not in " ".join(str(cell) for cell in row)

    def test_headers_include_ordering_seconds(self):
        assert "order-s" in OrderingEvaluation.headers()
