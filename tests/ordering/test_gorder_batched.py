"""Equivalence of the batched Gorder kernel with its references.

The batched numpy kernel must be *byte-identical* to the scalar loop
kernel — both implement the same state-functional greedy (max key,
then smallest node id) — and both must match the quadratic
:func:`gorder_naive` oracle.  These tests sweep graphs, windows and
hub thresholds, plus hypothesis-generated random graphs, and verify
the multiprocess partitioned ordering is worker-count invariant.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import InvalidParameterError
from repro.graph import from_edges, generators, invert_permutation
from repro.ordering import (
    GORDER_BACKENDS,
    gorder_naive,
    gorder_order,
    gorder_partitioned,
    gorder_sequence,
    gorder_sequence_lazy,
    window_scores,
    window_scores_reference,
)

from tests.conftest import assert_valid_permutation, graph_strategy

WINDOWS = (1, 3, 5, 8)


@pytest.fixture(scope="module")
def graphs():
    """A spread of shapes: social, web, sparse random, plus a path."""
    return [
        generators.social_graph(90, edges_per_node=5, seed=7),
        generators.web_graph(
            80, pages_per_host=16, out_degree=4, seed=3
        ),
        generators.erdos_renyi(60, 240, seed=11),
        from_edges([(i, i + 1) for i in range(19)], num_nodes=20),
    ]


class TestBackendEquivalence:
    @pytest.mark.parametrize("window", WINDOWS)
    def test_batched_matches_loop(self, graphs, window):
        for graph in graphs:
            batched = gorder_sequence(
                graph, window=window, backend="batched"
            )
            loop = gorder_sequence(
                graph, window=window, backend="loop"
            )
            assert np.array_equal(batched, loop), graph.name

    @pytest.mark.parametrize("window", WINDOWS)
    def test_batched_matches_naive_oracle(self, window):
        graph = generators.social_graph(40, edges_per_node=4, seed=5)
        batched = gorder_sequence(
            graph, window=window, backend="batched"
        )
        oracle = invert_permutation(gorder_naive(graph, window=window))
        assert np.array_equal(batched, oracle)

    @pytest.mark.parametrize("window", WINDOWS)
    def test_batched_matches_lazy(self, graphs, window):
        """The lazy-PQ variant shares the smallest-id tie-break."""
        for graph in graphs:
            batched = gorder_sequence(
                graph, window=window, backend="batched"
            )
            lazy = gorder_sequence_lazy(graph, window=window)
            assert np.array_equal(batched, lazy), graph.name

    @pytest.mark.parametrize("hub_threshold", [0, 2, 5])
    def test_hub_threshold_equivalence(self, graphs, hub_threshold):
        for graph in graphs:
            batched = gorder_sequence(
                graph, hub_threshold=hub_threshold, backend="batched"
            )
            loop = gorder_sequence(
                graph, hub_threshold=hub_threshold, backend="loop"
            )
            assert np.array_equal(batched, loop), graph.name

    @settings(max_examples=40, deadline=None)
    @given(graph=graph_strategy())
    def test_property_backends_agree(self, graph):
        for window in (1, 3):
            batched = gorder_sequence(
                graph, window=window, backend="batched"
            )
            loop = gorder_sequence(
                graph, window=window, backend="loop"
            )
            assert np.array_equal(batched, loop)
            assert_valid_permutation(
                invert_permutation(batched), graph.num_nodes
            )

    def test_empty_and_single_node(self):
        for backend in GORDER_BACKENDS:
            empty = gorder_sequence(
                from_edges([], num_nodes=0), backend=backend
            )
            assert empty.size == 0
            single = gorder_sequence(
                from_edges([], num_nodes=1), backend=backend
            )
            assert single.tolist() == [0]

    def test_backend_selection_on_order(self, small_social):
        batched = gorder_order(small_social, backend="batched")
        loop = gorder_order(small_social, backend="loop")
        assert np.array_equal(batched, loop)

    def test_unknown_backend_rejected(self, triangle):
        with pytest.raises(InvalidParameterError, match="backend"):
            gorder_sequence(triangle, backend="gpu")

    def test_backend_registry(self):
        assert set(GORDER_BACKENDS) == {"batched", "loop"}


class TestPartitionedWorkers:
    def test_workers_validation(self, triangle):
        with pytest.raises(InvalidParameterError):
            gorder_partitioned(triangle, workers=0)

    def test_backend_forwarded(self, small_social):
        batched = gorder_partitioned(
            small_social, num_parts=3, backend="batched"
        )
        loop = gorder_partitioned(
            small_social, num_parts=3, backend="loop"
        )
        assert np.array_equal(batched, loop)

    @pytest.mark.slow
    def test_workers_4_identical_to_workers_1(self):
        """Spawned process pool is a wall-clock detail, never a
        different arrangement."""
        graph = generators.social_graph(600, edges_per_node=6, seed=13)
        serial = gorder_partitioned(graph, num_parts=4, workers=1)
        parallel = gorder_partitioned(graph, num_parts=4, workers=4)
        assert np.array_equal(serial, parallel)
        assert_valid_permutation(parallel, graph.num_nodes)


class TestPartitionedTelemetry:
    """Per-part attribution: stable part= attrs, merged counters."""

    def test_inline_parts_profiled_with_part_attr(self, small_social):
        from repro import obs

        obs.configure(capture=True)
        try:
            gorder_partitioned(small_social, num_parts=3, workers=1)
            stats = obs.phase_stats()
            assert stats["gorder.partition"].count == 3
            parts = sorted(
                event["attrs"]["part"]
                for event in obs.captured()
                if event["kind"] == "span_end"
                and event["name"] == "gorder.partition"
            )
            assert parts == [0, 1, 2]
        finally:
            obs.reset()

    @pytest.mark.slow
    def test_worker_counters_merge_into_parent(self):
        """workers=2 must leave the same counter totals as workers=1.

        The spawned workers ship their ``gorder.*`` counter deltas
        home; after the merge the parent registry is indistinguishable
        from having run every part inline.
        """
        from repro import obs

        graph = generators.social_graph(400, edges_per_node=5, seed=3)
        obs.configure()
        try:
            gorder_partitioned(graph, num_parts=3, workers=1)
            inline_counters = obs.counters()
            obs.reset()
            obs.configure(capture=True)
            gorder_partitioned(graph, num_parts=3, workers=2)
            assert obs.counters() == inline_counters
            events = [
                event
                for event in obs.captured()
                if event["kind"] == "event"
                and event["name"] == "gorder.partition"
            ]
            assert sorted(
                event["attrs"]["part"] for event in events
            ) == [0, 1, 2]
            for event in events:
                assert event["attrs"]["seconds"] >= 0.0
                assert event["attrs"]["counters"]
        finally:
            obs.reset()


class TestWindowScoresVectorised:
    @pytest.mark.parametrize("window", WINDOWS)
    def test_matches_reference_on_gorder_sequence(self, graphs, window):
        for graph in graphs:
            sequence = gorder_sequence(graph, window=window)
            fast = window_scores(graph, sequence, window)
            oracle = window_scores_reference(graph, sequence, window)
            assert np.array_equal(fast, oracle), graph.name

    @settings(max_examples=40, deadline=None)
    @given(graph=graph_strategy())
    def test_property_matches_reference(self, graph):
        rng = np.random.default_rng(0)
        sequence = rng.permutation(graph.num_nodes).astype(np.int64)
        for window in (1, 4):
            fast = window_scores(graph, sequence, window)
            oracle = window_scores_reference(graph, sequence, window)
            assert np.array_equal(fast, oracle)

    def test_partial_sequence(self):
        """Scoring a prefix (not all nodes placed) stays correct."""
        graph = generators.social_graph(50, edges_per_node=4, seed=2)
        sequence = gorder_sequence(graph)[:20]
        fast = window_scores(graph, sequence, 5)
        oracle = window_scores_reference(graph, sequence, 5)
        assert np.array_equal(fast, oracle)

    def test_window_validation(self, triangle):
        with pytest.raises(InvalidParameterError):
            window_scores(triangle, np.array([0, 1, 2]), window=0)
        with pytest.raises(InvalidParameterError):
            window_scores_reference(
                triangle, np.array([0, 1, 2]), window=0
            )
