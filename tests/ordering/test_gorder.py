"""Tests for the Gorder algorithm (core contribution)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import InvalidParameterError
from repro.graph import from_edges, generators, invert_permutation
from repro.ordering import (
    gorder_naive,
    gorder_order,
    gorder_score,
    gorder_sequence,
    window_scores,
)
from repro.ordering.metrics import pair_score

from tests.conftest import assert_valid_permutation, graph_strategy


class TestBasics:
    def test_valid_permutation(self, small_social):
        perm = gorder_order(small_social)
        assert_valid_permutation(perm, small_social.num_nodes)

    def test_window_validation(self, triangle):
        with pytest.raises(InvalidParameterError):
            gorder_order(triangle, window=0)
        with pytest.raises(InvalidParameterError):
            gorder_naive(triangle, window=0)
        with pytest.raises(InvalidParameterError):
            gorder_sequence(triangle, window=-3)

    def test_hub_threshold_validation(self, triangle):
        with pytest.raises(InvalidParameterError):
            gorder_order(triangle, hub_threshold=-1)

    def test_empty_graph(self):
        graph = from_edges([], num_nodes=0)
        assert gorder_order(graph).tolist() == []
        assert gorder_naive(graph).tolist() == []

    def test_single_node(self):
        graph = from_edges([], num_nodes=1)
        assert gorder_order(graph).tolist() == [0]

    def test_starts_at_max_in_degree(self, small_web):
        sequence = gorder_sequence(small_web)
        start = int(np.argmax(small_web.in_degrees()))
        assert sequence[0] == start

    def test_deterministic(self, small_social):
        assert np.array_equal(
            gorder_order(small_social), gorder_order(small_social)
        )


class TestGreedyInvariant:
    """At each step the fast algorithm must pick a node whose window
    score is maximal among all remaining candidates - the defining
    property of the greedy, independent of tie-breaking."""

    def _check(self, graph, window):
        sequence = gorder_sequence(graph, window=window)
        placed = [int(sequence[0])]
        remaining = set(range(graph.num_nodes)) - {placed[0]}
        for i in range(1, graph.num_nodes):
            window_nodes = placed[-window:]
            chosen = int(sequence[i])

            def score(v):
                return sum(
                    pair_score(graph, u, v) for u in window_nodes
                )

            best = max(score(v) for v in remaining)
            assert score(chosen) == best
            placed.append(chosen)
            remaining.discard(chosen)

    def test_small_social(self):
        graph = generators.social_graph(40, edges_per_node=4, seed=9)
        self._check(graph, window=3)

    def test_small_web(self):
        graph = generators.web_graph(
            50, pages_per_host=10, out_degree=4, seed=9
        )
        self._check(graph, window=5)

    @settings(max_examples=15, deadline=None)
    @given(graph_strategy(max_nodes=10, max_edges=25))
    def test_property(self, graph):
        if graph.num_nodes >= 2:
            self._check(graph, window=2)


class TestNaiveEquivalence:
    """The naive reference achieves the same greedy step scores."""

    @settings(max_examples=10, deadline=None)
    @given(graph_strategy(max_nodes=9, max_edges=20))
    def test_same_step_scores(self, graph):
        if graph.num_nodes < 2:
            return
        window = 3
        fast_seq = gorder_sequence(graph, window=window)
        naive_seq = invert_permutation(gorder_naive(graph, window=window))
        fast_scores = window_scores(graph, fast_seq, window=window)
        naive_scores = window_scores(graph, naive_seq, window=window)
        # Greedy choices may differ on ties, but the sequence of
        # achieved step scores is identical for a deterministic
        # greedy... not in general. What must match is the total of
        # greedy scores when no ties occur; at minimum both must
        # satisfy the invariant, and both start from the same node.
        assert fast_seq[0] == naive_seq[0]
        assert fast_scores[1] == naive_scores[1]


class TestQuality:
    def test_beats_random_on_objective(self, small_social):
        gorder_perm = gorder_order(small_social)
        rng_perm = np.random.default_rng(0).permutation(
            small_social.num_nodes
        ).astype(np.int64)
        assert gorder_score(small_social, gorder_perm) > gorder_score(
            small_social, rng_perm
        )

    def test_beats_original_on_objective(self, small_web):
        gorder_perm = gorder_order(small_web)
        identity = np.arange(small_web.num_nodes, dtype=np.int64)
        assert gorder_score(small_web, gorder_perm) >= gorder_score(
            small_web, identity
        )

    def test_hub_threshold_trades_quality_for_speed(self, small_web):
        exact = gorder_order(small_web)
        approximate = gorder_order(small_web, hub_threshold=2)
        assert_valid_permutation(approximate, small_web.num_nodes)
        assert gorder_score(small_web, approximate) <= gorder_score(
            small_web, exact
        ) * 1.05  # roughly as good, never dramatically better

    def test_large_hub_threshold_is_exact(self, small_web):
        exact = gorder_order(small_web)
        high = gorder_order(
            small_web, hub_threshold=small_web.num_nodes
        )
        assert np.array_equal(exact, high)


class TestWindowScores:
    def test_validation(self, triangle):
        with pytest.raises(InvalidParameterError):
            window_scores(triangle, np.array([0, 1, 2]), window=0)

    def test_known_values(self):
        graph = from_edges([(0, 1), (1, 2)])
        scores = window_scores(
            graph, np.array([0, 1, 2]), window=1
        )
        assert scores.tolist() == [0, 1, 1]
