"""Empirical verification of the paper's approximation theorem."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import InvalidParameterError
from repro.graph import from_edges, generators
from repro.ordering import gorder_order, gorder_score
from repro.ordering.theory import (
    MAX_EXHAUSTIVE_NODES,
    expected_score_lower_bound,
    greedy_approximation_ratio,
    hardness_witness,
    optimal_score,
    theoretical_bound,
)

from tests.conftest import graph_strategy


class TestOptimalScore:
    def test_empty_graph(self):
        score, perm = optimal_score(from_edges([], num_nodes=0))
        assert score == 0
        assert perm.size == 0

    def test_path_window_one(self):
        # 0 -> 1 -> 2: identity already realises both unit gaps.
        graph = from_edges([(0, 1), (1, 2)])
        score, perm = optimal_score(graph, window=1)
        assert score == 2
        assert gorder_score(graph, perm, window=1) == score

    def test_size_cap(self):
        big = generators.ring(MAX_EXHAUSTIVE_NODES + 1)
        with pytest.raises(InvalidParameterError, match="limited"):
            optimal_score(big)

    def test_optimum_is_achievable(self):
        graph = generators.social_graph(7, edges_per_node=2, seed=4)
        score, perm = optimal_score(graph, window=2)
        assert gorder_score(graph, perm, window=2) == score


class TestApproximationTheorem:
    """Theorem 5.2: greedy >= optimal / (2w)."""

    def test_bound_values(self):
        assert theoretical_bound(1) == 0.5
        assert theoretical_bound(5) == 0.1
        with pytest.raises(InvalidParameterError):
            theoretical_bound(0)

    @pytest.mark.parametrize("window", [1, 2, 3])
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_holds_on_random_graphs(self, window, seed):
        graph = generators.erdos_renyi(7, 14, seed=seed)
        ratio = greedy_approximation_ratio(graph, window=window)
        assert ratio >= theoretical_bound(window)

    @settings(max_examples=20, deadline=None)
    @given(graph_strategy(max_nodes=7, max_edges=16))
    def test_holds_property(self, graph):
        ratio = greedy_approximation_ratio(graph, window=2)
        assert ratio >= theoretical_bound(2)

    def test_greedy_usually_near_optimal(self):
        """In practice greedy lands way above the worst-case bound."""
        ratios = [
            greedy_approximation_ratio(
                generators.erdos_renyi(7, 16, seed=s), window=2
            )
            for s in range(6)
        ]
        # Far above the 1/(2w) = 0.25 guarantee (observed ~0.78).
        assert sum(ratios) / len(ratios) > 0.6

    def test_witness_shows_suboptimality_exists(self):
        """The problem is genuinely hard: greedy (or any fixed
        heuristic) does not always achieve the optimum."""
        graph = hardness_witness()
        ratio = greedy_approximation_ratio(graph, window=1)
        assert theoretical_bound(1) <= ratio <= 1.0

    def test_witness_validation(self):
        with pytest.raises(InvalidParameterError):
            hardness_witness(num_nodes=3)


class TestExpectedRandomScore:
    def test_tiny_graph_exact(self):
        # Two nodes, one edge: any arrangement scores S(0,1) = 1.
        graph = from_edges([(0, 1)])
        assert expected_score_lower_bound(
            graph, window=1
        ) == pytest.approx(1.0)

    def test_matches_empirical_mean(self):
        graph = generators.erdos_renyi(8, 20, seed=2)
        expected = expected_score_lower_bound(graph, window=2)
        rng = np.random.default_rng(0)
        samples = [
            gorder_score(
                graph,
                rng.permutation(8).astype(np.int64),
                window=2,
            )
            for _ in range(300)
        ]
        assert np.mean(samples) == pytest.approx(expected, rel=0.15)

    def test_greedy_beats_random_expectation(self):
        graph = generators.social_graph(60, edges_per_node=4, seed=3)
        greedy = gorder_score(graph, gorder_order(graph, window=3),
                              window=3)
        assert greedy > expected_score_lower_bound(graph, window=3)

    def test_single_node(self):
        assert expected_score_lower_bound(
            from_edges([], num_nodes=1)
        ) == 0.0
