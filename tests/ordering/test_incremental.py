"""Tests for the incremental Gorder extension."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError, InvalidPermutationError
from repro.graph import from_arrays, from_edges, generators
from repro.ordering import (
    append_identity,
    gorder_extend,
    gorder_order,
    gorder_score,
)

from tests.conftest import assert_valid_permutation


def grow(base, extra_nodes, seed=5):
    """Add ``extra_nodes`` new nodes, each linking into the old graph
    and to the previous new node."""
    rng = np.random.default_rng(seed)
    sources, targets = base.edge_array()
    new_sources = []
    new_targets = []
    n_old = base.num_nodes
    for i in range(extra_nodes):
        u = n_old + i
        for _ in range(4):
            new_sources.append(u)
            new_targets.append(int(rng.integers(0, n_old)))
        if i:
            new_sources.append(u)
            new_targets.append(u - 1)
    return from_arrays(
        np.concatenate([sources, np.array(new_sources, dtype=np.int64)]),
        np.concatenate([targets, np.array(new_targets, dtype=np.int64)]),
        num_nodes=n_old + extra_nodes,
        name="grown",
    )


@pytest.fixture(scope="module")
def evolved():
    base = generators.social_graph(100, edges_per_node=5, seed=2)
    base_perm = gorder_order(base)
    return base, base_perm, grow(base, 30)


class TestGorderExtend:
    def test_valid_permutation(self, evolved):
        base, base_perm, grown = evolved
        perm = gorder_extend(grown, base_perm)
        assert_valid_permutation(perm, grown.num_nodes)

    def test_old_positions_preserved(self, evolved):
        base, base_perm, grown = evolved
        perm = gorder_extend(grown, base_perm)
        assert np.array_equal(perm[:base.num_nodes], base_perm)

    def test_new_nodes_fill_tail(self, evolved):
        base, base_perm, grown = evolved
        perm = gorder_extend(grown, base_perm)
        new_positions = sorted(
            int(perm[u]) for u in range(base.num_nodes, grown.num_nodes)
        )
        assert new_positions == list(
            range(base.num_nodes, grown.num_nodes)
        )

    def test_beats_identity_append_on_objective(self, evolved):
        base, base_perm, grown = evolved
        extended = gorder_extend(grown, base_perm)
        naive = append_identity(base_perm, grown.num_nodes)
        assert gorder_score(grown, extended) >= gorder_score(
            grown, naive
        )

    def test_no_new_nodes_is_identity(self, evolved):
        base, base_perm, _ = evolved
        perm = gorder_extend(base, base_perm)
        assert np.array_equal(perm, base_perm)

    def test_empty_base(self):
        graph = from_edges([(0, 1), (1, 2), (2, 0)])
        perm = gorder_extend(graph, np.zeros(0, dtype=np.int64))
        assert_valid_permutation(perm, 3)

    def test_window_validation(self, evolved):
        base, base_perm, grown = evolved
        with pytest.raises(InvalidParameterError):
            gorder_extend(grown, base_perm, window=0)

    def test_oversized_base_rejected(self):
        graph = from_edges([(0, 1)])
        with pytest.raises(InvalidPermutationError):
            gorder_extend(graph, np.arange(5))

    def test_invalid_base_rejected(self, evolved):
        _, _, grown = evolved
        with pytest.raises(InvalidPermutationError):
            gorder_extend(grown, np.zeros(10, dtype=np.int64))


class TestExtendLazyExclusion:
    """Regression tests for the old-node exclusion strategy.

    The original implementation excluded already-placed nodes by
    seeding a full heap and removing them one by one — an O(n) loop
    whose cost grew with the base graph, not the batch.  The fix makes
    exclusion lazy (a candidate mask at heap construction) and skips
    score events aimed at old nodes outright.
    """

    def _instrumented(self, monkeypatch):
        from repro.ordering import incremental
        from repro.ordering.unit_heap import MeteredUnitHeap

        created = []

        class RecordingHeap(MeteredUnitHeap):
            def __init__(self, num_items, candidates=None):
                super().__init__(num_items, candidates=candidates)
                self.popped = []
                created.append(self)

            def pop_max(self):
                item = super().pop_max()
                self.popped.append(item)
                return item

        monkeypatch.setattr(incremental, "UnitHeap", RecordingHeap)
        return created

    def test_no_scalar_removes(self, evolved, monkeypatch):
        """Pre-fix code issued one heap.remove per old node."""
        base, base_perm, grown = evolved
        created = self._instrumented(monkeypatch)
        gorder_extend(grown, base_perm)
        (heap,) = created
        assert heap.removes == 0

    def test_only_new_nodes_popped(self, evolved, monkeypatch):
        base, base_perm, grown = evolved
        created = self._instrumented(monkeypatch)
        gorder_extend(grown, base_perm)
        (heap,) = created
        assert len(heap.popped) == grown.num_nodes - base.num_nodes
        assert min(heap.popped) >= base.num_nodes

    def test_cost_scales_with_batch_not_graph(self, monkeypatch):
        """The same batch appended to a 10x larger base must not cost
        10x more heap operations: extension work is proportional to
        the new nodes' neighbourhoods."""
        from repro.ordering import incremental
        from repro.ordering.unit_heap import MeteredUnitHeap

        class CountingHeap(MeteredUnitHeap):
            latest = None

            def __init__(self, num_items, candidates=None):
                super().__init__(num_items, candidates=candidates)
                CountingHeap.latest = self

        monkeypatch.setattr(incremental, "UnitHeap", CountingHeap)

        def operations(base_nodes):
            base = generators.social_graph(
                base_nodes, edges_per_node=4, seed=6
            )
            base_perm = gorder_order(base)
            grown = grow(base, 20, seed=9)
            gorder_extend(grown, base_perm)
            heap = CountingHeap.latest
            return (
                heap.increases + heap.decreases
                + heap.pops + heap.removes
            )

        small = operations(120)
        large = operations(1200)
        # Pre-fix, `large` carried ~1200 extra removes and the ratio
        # blew past 2; batch-proportional cost keeps it near 1.
        assert large <= 2 * small


class TestAppendIdentity:
    def test_simple(self):
        base = np.array([1, 0], dtype=np.int64)
        perm = append_identity(base, 4)
        assert perm.tolist() == [1, 0, 2, 3]

    def test_oversized_base_rejected(self):
        with pytest.raises(InvalidPermutationError):
            append_identity(np.arange(5), 3)


class TestExtendGreedyInvariant:
    def test_each_new_placement_is_argmax(self):
        """The incremental extension obeys the same greedy invariant
        as full Gorder: each new node placed maximises the window
        score among remaining new candidates."""
        import numpy as np

        from repro.graph import from_arrays, invert_permutation
        from repro.ordering.metrics import pair_score

        base = generators.social_graph(30, edges_per_node=3, seed=8)
        base_perm = gorder_order(base)
        grown = grow(base, 8, seed=3)
        window = 4
        perm = gorder_extend(grown, base_perm, window=window)

        n_old = base.num_nodes
        sequence = invert_permutation(perm)
        placed = [int(u) for u in sequence[:n_old]]
        remaining = set(range(n_old, grown.num_nodes))
        for position in range(n_old, grown.num_nodes):
            window_nodes = placed[-window:]
            chosen = int(sequence[position])

            def score(v):
                return sum(
                    pair_score(grown, u, v) for u in window_nodes
                )

            assert score(chosen) == max(score(v) for v in remaining)
            placed.append(chosen)
            remaining.discard(chosen)
