"""Tests for the simulated-annealing MinLA / MinLogA orderings."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph import generators
from repro.ordering import (
    minla_energy,
    minla_order,
    minloga_energy,
    minloga_order,
)

from tests.conftest import assert_valid_permutation


@pytest.fixture(scope="module")
def graph():
    return generators.social_graph(150, edges_per_node=5, seed=11)


class TestMinla:
    def test_valid_permutation(self, graph):
        assert_valid_permutation(
            minla_order(graph, seed=1), graph.num_nodes
        )

    def test_improves_over_start(self, graph):
        """Annealing from the identity must not worsen the energy
        (local search accepts only improving swaps)."""
        start = np.arange(graph.num_nodes, dtype=np.int64)
        result = minla_order(graph, seed=1, standard_energy=0.0)
        assert minla_energy(graph, result) <= minla_energy(graph, start)

    def test_local_search_beats_huge_temperature(self, graph):
        """With k enormous every swap is accepted - the arrangement is
        effectively random and worse than local search (the
        replication's Figure 3 observation b)."""
        local = minla_order(graph, seed=1, standard_energy=0.0)
        hot = minla_order(graph, seed=1, standard_energy=1e9)
        assert minla_energy(graph, local) < minla_energy(graph, hot)

    def test_more_steps_do_not_hurt(self, graph):
        short = minla_order(
            graph, seed=1, steps=graph.num_edges // 8,
            standard_energy=0.0,
        )
        long = minla_order(
            graph, seed=1, steps=graph.num_edges * 2,
            standard_energy=0.0,
        )
        assert minla_energy(graph, long) <= minla_energy(graph, short)

    def test_zero_steps_is_identity(self, graph):
        perm = minla_order(graph, seed=1, steps=0)
        assert np.array_equal(perm, np.arange(graph.num_nodes))

    def test_invalid_parameters(self, graph):
        with pytest.raises(InvalidParameterError):
            minla_order(graph, steps=-1)
        with pytest.raises(InvalidParameterError):
            minla_order(graph, standard_energy=-1.0)

    def test_trivial_graphs(self):
        from repro.graph import from_edges

        empty = from_edges([], num_nodes=1)
        assert minla_order(empty).tolist() == [0]
        none = from_edges([], num_nodes=0)
        assert minla_order(none).tolist() == []


class TestMinloga:
    def test_valid_permutation(self, graph):
        assert_valid_permutation(
            minloga_order(graph, seed=1), graph.num_nodes
        )

    def test_improves_log_energy(self, graph):
        start = np.arange(graph.num_nodes, dtype=np.int64)
        result = minloga_order(graph, seed=1, standard_energy=0.0)
        assert minloga_energy(graph, result) <= minloga_energy(
            graph, start
        )

    def test_objectives_differ(self, graph):
        """MinLA and MinLogA optimise different objectives, so their
        outputs should generally differ."""
        a = minla_order(graph, seed=1)
        b = minloga_order(graph, seed=1)
        assert not np.array_equal(a, b)
