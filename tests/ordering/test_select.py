"""Tests for the adaptive cost/quality ordering selector."""

import json

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph import generators
from repro.ordering import (
    HEAVYWEIGHT_ORDERINGS,
    CandidateConfig,
    auto_order,
    compute_ordering,
    default_candidates,
    select_ordering,
)

from tests.conftest import assert_valid_permutation


@pytest.fixture(scope="module")
def graph():
    return generators.web_graph(
        300, pages_per_host=20, out_degree=6, seed=17
    )


LIGHT = (
    CandidateConfig("original"),
    CandidateConfig("hubcluster"),
    CandidateConfig("dbg"),
)


class TestDefaultCandidates:
    def test_baseline_first(self):
        assert default_candidates()[0].ordering == "original"

    def test_labels_unique(self):
        labels = [c.label for c in default_candidates()]
        assert len(labels) == len(set(labels))

    def test_contains_one_heavyweight(self):
        heavy = [
            c for c in default_candidates()
            if c.ordering in HEAVYWEIGHT_ORDERINGS
        ]
        assert [c.ordering for c in heavy] == ["gorder"]

    def test_knobs_reach_gorder_label(self):
        configs = default_candidates(window=7, gorder_backend="loop")
        assert configs[-1].label == "gorder[w=7,loop]"


class TestSelectOrdering:
    def test_chosen_minimises_amortised_seconds(self, graph):
        decision = select_ordering(graph, candidates=LIGHT)
        best = min(
            probe.amortised_seconds for probe in decision.probes
        )
        assert decision.chosen.amortised_seconds == best

    def test_oracle_is_min_probe_cycles(self, graph):
        decision = select_ordering(graph, candidates=LIGHT)
        assert decision.oracle_probe.probe_cycles == min(
            probe.probe_cycles for probe in decision.probes
        )

    def test_baseline_break_even_is_zero(self, graph):
        decision = select_ordering(graph, candidates=LIGHT)
        assert decision.probes[0].ordering == "original"
        assert decision.probes[0].break_even_queries == 0.0

    def test_zero_volume_picks_cheapest_ordering(self, graph):
        # With no queries to amortise over, ordering cost is the whole
        # bill and the free baseline wins.
        decision = select_ordering(graph, query_volume=0,
                                   candidates=LIGHT)
        assert decision.chosen.ordering == "original"

    def test_heavyweight_pruned_at_low_volume(self, graph):
        decision = select_ordering(graph, query_volume=1)
        assert decision.pruned == ("gorder[w=5,batched]",)
        assert all(
            probe.ordering not in HEAVYWEIGHT_ORDERINGS
            for probe in decision.probes
        )

    def test_heavyweight_probed_at_high_volume(self, graph):
        decision = select_ordering(graph, query_volume=10**9)
        assert decision.pruned == ()
        assert any(
            probe.ordering == "gorder" for probe in decision.probes
        )

    def test_selector_tracks_oracle_at_high_volume(self, graph):
        # When the cycle term dominates, the amortised minimum and the
        # locality oracle coincide.
        decision = select_ordering(graph, query_volume=10**12)
        assert decision.chosen.label == decision.oracle

    def test_decision_serialises_to_json(self, graph):
        decision = select_ordering(graph, query_volume=0,
                                   candidates=LIGHT)
        payload = json.dumps(decision.as_dict())
        restored = json.loads(payload)
        assert restored["chosen"]["ordering"] == "original"
        # inf break-evens must land as null, not bare Infinity.
        assert "Infinity" not in payload

    def test_dataset_name_defaults_to_graph_name(self, graph):
        decision = select_ordering(graph, candidates=LIGHT)
        assert decision.dataset == graph.name
        named = select_ordering(
            graph, candidates=LIGHT, dataset="other"
        )
        assert named.dataset == "other"

    def test_validation(self, graph):
        with pytest.raises(InvalidParameterError):
            select_ordering(graph, query_volume=-1)
        with pytest.raises(InvalidParameterError):
            select_ordering(graph, clock_hz=0)
        with pytest.raises(InvalidParameterError):
            select_ordering(graph, candidates=())


class TestAutoOrder:
    def test_valid_permutation(self, graph):
        perm = auto_order(graph, candidates=LIGHT)
        assert_valid_permutation(perm, graph.num_nodes)

    def test_returns_the_chosen_arrangement(self, graph):
        decision = select_ordering(graph, candidates=LIGHT)
        perm = auto_order(graph, candidates=LIGHT)
        expected = compute_ordering(
            decision.chosen.ordering, graph, seed=0
        )
        assert np.array_equal(perm, expected)

    def test_registry_route_matches_direct_call(self, graph):
        via_registry = compute_ordering(
            "auto", graph, seed=0, candidates=LIGHT
        )
        direct = auto_order(graph, seed=0, candidates=LIGHT)
        assert np.array_equal(via_registry, direct)

    def test_unknown_params_dropped(self, graph):
        perm = auto_order(
            graph, candidates=LIGHT, temperature=0.5, passes=3
        )
        assert_valid_permutation(perm, graph.num_nodes)

    def test_registry_lists_auto(self):
        from repro.ordering import ALL_ORDERING_NAMES, ORDERING_NAMES

        assert "auto" in ALL_ORDERING_NAMES
        # Not a paper-headline ordering: stays out of figure sweeps.
        assert "auto" not in ORDERING_NAMES
