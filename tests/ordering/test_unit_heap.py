"""Unit and model-based property tests for the unit heap."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.ordering import UnitHeap
from repro.ordering.unit_heap import MeteredUnitHeap


class TestBasics:
    def test_initial_state(self):
        heap = UnitHeap(3)
        assert len(heap) == 3
        assert all(i in heap for i in range(3))
        assert heap.key_of(1) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            UnitHeap(-1)

    def test_empty_heap(self):
        heap = UnitHeap(0)
        assert len(heap) == 0
        with pytest.raises(IndexError):
            heap.pop_max()
        with pytest.raises(IndexError):
            heap.peek_max_key()

    def test_increase_and_pop(self):
        heap = UnitHeap(3)
        heap.increase(1)
        heap.increase(1)
        heap.increase(2)
        assert heap.peek_max_key() == 2
        assert heap.pop_max() == 1
        assert heap.pop_max() == 2
        assert heap.pop_max() == 0
        assert len(heap) == 0

    def test_decrease(self):
        heap = UnitHeap(2)
        heap.increase(0)
        heap.increase(0)
        heap.decrease(0)
        heap.increase(1)
        # Both at key 1; FIFO tie-break: 0 reached key 1 first... but 0
        # re-entered bucket 1 after the decrease, so 1 may come first.
        # Only the key value is part of the contract.
        assert heap.key_of(0) == 1
        assert heap.key_of(1) == 1

    def test_updates_after_removal_ignored(self):
        heap = UnitHeap(2)
        heap.remove(0)
        heap.increase(0)
        heap.decrease(0)
        assert 0 not in heap
        assert heap.pop_max() == 1

    def test_popped_item_not_resurrected(self):
        heap = UnitHeap(2)
        heap.increase(0)
        assert heap.pop_max() == 0
        heap.increase(0)
        assert heap.pop_max() == 1

    def test_remove_is_idempotent(self):
        heap = UnitHeap(2)
        heap.remove(1)
        heap.remove(1)
        assert len(heap) == 1

    def test_max_key_recovers_after_pops(self):
        heap = UnitHeap(3)
        for _ in range(5):
            heap.increase(0)
        heap.increase(1)
        assert heap.pop_max() == 0
        assert heap.peek_max_key() == 1
        assert heap.pop_max() == 1


@st.composite
def operation_sequences(draw):
    size = draw(st.integers(1, 8))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["inc", "dec", "pop", "remove"]),
                st.integers(0, size - 1),
            ),
            max_size=60,
        )
    )
    return size, ops


class TestModelBased:
    @given(operation_sequences())
    def test_matches_reference_model(self, case):
        """Replay random operations against a dict-based reference."""
        size, ops = case
        heap = UnitHeap(size)
        model: dict[int, int] = {i: 0 for i in range(size)}
        for op, item in ops:
            if op == "inc":
                heap.increase(item)
                if item in model:
                    model[item] += 1
            elif op == "dec":
                heap.decrease(item)
                if item in model:
                    model[item] -= 1
            elif op == "remove":
                heap.remove(item)
                model.pop(item, None)
            elif op == "pop" and model:
                popped = heap.pop_max()
                max_key = max(model.values())
                assert model[popped] == max_key
                del model[popped]
            assert len(heap) == len(model)
            for node, key in model.items():
                assert heap.key_of(node) == key


class TestGorderUsagePattern:
    def test_window_slide_pattern(self):
        """Exercise the exact usage Gorder makes: bursts of increases
        when a node enters the window, matching decreases when it
        leaves, pops in between — keys must never go negative and the
        heap must drain completely."""
        import numpy as np

        rng = np.random.default_rng(5)
        n = 60
        heap = UnitHeap(n)
        window: list[list[int]] = []
        placed = []
        heap.remove(0)
        placed.append(0)
        for step in range(1, n):
            burst = [
                int(rng.integers(0, n)) for _ in range(6)
            ]
            for item in burst:
                heap.increase(item)
            window.append(burst)
            if len(window) > 5:
                for item in window.pop(0):
                    heap.decrease(item)
            chosen = heap.pop_max()
            placed.append(chosen)
        assert sorted(placed) == list(range(n))
        assert len(heap) == 0

    def test_interleaved_increase_decrease_never_corrupts(self):
        heap = UnitHeap(10)
        for _ in range(200):
            heap.increase(3)
            heap.increase(3)
            heap.decrease(3)
        assert heap.key_of(3) == 200
        assert heap.pop_max() == 3


class TestBatchUpdates:
    """The array-wise entry points must be indistinguishable from the
    equivalent scalar call sequences (pop order is a pure function of
    keys and presence, so equal keys mean equal behaviour)."""

    @staticmethod
    def _drain(heap):
        return [heap.pop_max() for _ in range(len(heap))]

    def test_increase_batch_equals_scalar(self):
        scalar, batched = UnitHeap(6), UnitHeap(6)
        items = [3, 1, 3, 5, 3, 1]
        for item in items:
            scalar.increase(item)
        batched.increase_batch(np.array(items))
        assert self._drain(scalar) == self._drain(batched)

    def test_decrease_batch_equals_scalar(self):
        scalar, batched = UnitHeap(4), UnitHeap(4)
        for heap in (scalar, batched):
            heap.increase_batch(np.array([0, 0, 1, 1, 2]))
        scalar.decrease(0)
        scalar.decrease(1)
        batched.decrease_batch(np.array([0, 1]))
        assert self._drain(scalar) == self._drain(batched)

    def test_counts_path_equals_repeats(self):
        repeated, counted = UnitHeap(5), UnitHeap(5)
        repeated.increase_batch(np.array([2, 2, 2, 4, 4]))
        counted.increase_batch(
            np.array([2, 4]), counts=np.array([3, 2])
        )
        assert repeated.key_of(2) == counted.key_of(2) == 3
        assert self._drain(repeated) == self._drain(counted)

    def test_apply_step_equals_two_phase(self):
        """One fused enter+exit step == increase_batch; decrease_batch."""
        rng = np.random.default_rng(7)
        initial = rng.integers(0, 20, size=50)
        fused, phased = UnitHeap(20), UnitHeap(20)
        for heap in (fused, phased):
            heap.increase_batch(initial)
        enter = rng.integers(0, 20, size=12)
        exit_ = rng.integers(0, 20, size=12)
        fused.apply_step(enter, exit_)
        phased.increase_batch(enter)
        phased.decrease_batch(exit_)
        assert self._drain(fused) == self._drain(phased)

    def test_apply_step_skips_absent_items(self):
        heap = UnitHeap(4)
        heap.remove(2)
        heap.apply_step(np.array([2, 2, 1]), np.array([2]))
        assert 2 not in heap
        assert heap.key_of(1) == 1
        assert self._drain(heap) == [1, 0, 3]

    def test_empty_batches_are_noops(self):
        heap = UnitHeap(3)
        heap.increase_batch(np.array([], dtype=np.int64))
        assert heap.apply_step(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        ) == 0
        assert self._drain(heap) == [0, 1, 2]

    def test_min_id_tie_break(self):
        heap = UnitHeap(8)
        heap.increase_batch(np.array([6, 2, 4]))
        assert heap.pop_max() == 2
        assert heap.pop_max() == 4
        assert heap.pop_max() == 6
        assert heap.pop_max() == 0

    def test_batch_validation(self):
        heap = UnitHeap(3)
        with pytest.raises(InvalidParameterError):
            heap.increase_batch(np.array([0.5, 1.0]))
        with pytest.raises(InvalidParameterError):
            heap.increase_batch(np.array([[0, 1]]))
        with pytest.raises(InvalidParameterError):
            heap.increase_batch(
                np.array([0, 1]), counts=np.array([1])
            )
        with pytest.raises(InvalidParameterError):
            heap.increase_batch(
                np.array([0, 1]), counts=np.array([1, -1])
            )

    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            max_size=30,
        )
    )
    def test_property_random_steps_match_scalar_model(self, steps):
        """Random fused steps against the dict model (present items)."""
        fused = UnitHeap(8)
        model = {i: 0 for i in range(8)}
        for enter_item, exit_item in steps:
            fused.apply_step(
                np.array([enter_item]), np.array([exit_item])
            )
            if enter_item in model:
                model[enter_item] += 1
            if exit_item in model:
                model[exit_item] -= 1
        while model:
            popped = fused.pop_max()
            max_key = max(model.values())
            candidates = [
                item for item, key in model.items() if key == max_key
            ]
            assert popped == min(candidates)
            del model[popped]


class TestMeteredBatches:
    def test_batch_counters_match_raw_units(self):
        heap = MeteredUnitHeap(6)
        heap.increase_batch(np.array([1, 1, 2]))
        heap.decrease_batch(np.array([1]))
        assert heap.increases == 3
        assert heap.decreases == 1
        assert heap.priority_updates == 4

    def test_apply_step_unit_counts_match_two_phases(self):
        """Raw unit counts agree with the two-phase form, so the loop
        and batched Gorder kernels report identical priority_updates.
        batched_moves dedups per *step* in the fused form (3 touched
        items here) vs per *phase* two-phased (3 + 2)."""
        fused = MeteredUnitHeap(6)
        phased = MeteredUnitHeap(6)
        enter = np.array([1, 1, 2, 3])
        exit_ = np.array([2, 3])
        moved = fused.apply_step(enter, exit_)
        phased.increase_batch(enter)
        phased.decrease_batch(exit_)
        assert fused.increases == phased.increases == 4
        assert fused.decreases == phased.decreases == 2
        assert moved == fused.batched_moves == 3
        assert phased.batched_moves == 5

    def test_metered_apply_step_pops_match_plain(self):
        plain, metered = UnitHeap(8), MeteredUnitHeap(8)
        enter = np.array([1, 1, 5, 3])
        exit_ = np.array([5, 0])
        for heap in (plain, metered):
            heap.apply_step(enter, exit_)
        assert [plain.pop_max() for _ in range(8)] == [
            metered.pop_max() for _ in range(8)
        ]

    def test_counts_weighted_units(self):
        heap = MeteredUnitHeap(4)
        heap.increase_batch(np.array([0, 2]), counts=np.array([3, 2]))
        assert heap.increases == 5


class TestCandidateSubset:
    """Heaps restricted to a candidate subset at construction."""

    def test_only_candidates_present(self):
        heap = UnitHeap(6, candidates=np.array([2, 4, 5]))
        assert len(heap) == 3
        assert all(i in heap for i in (2, 4, 5))
        assert all(i not in heap for i in (0, 1, 3))

    def test_pops_cover_exactly_the_candidates(self):
        heap = UnitHeap(6, candidates=np.array([5, 2, 4]))
        heap.increase(4)
        assert heap.pop_max() == 4
        assert sorted([heap.pop_max(), heap.pop_max()]) == [2, 5]
        with pytest.raises(IndexError):
            heap.pop_max()

    def test_ties_break_by_smallest_id(self):
        heap = UnitHeap(8, candidates=np.array([6, 3, 5]))
        assert heap.pop_max() == 3

    def test_updates_on_non_candidates_ignored(self):
        heap = UnitHeap(4, candidates=np.array([1]))
        heap.increase(0)
        heap.decrease(3)
        assert len(heap) == 1
        assert heap.pop_max() == 1

    def test_duplicate_candidates_collapse(self):
        heap = UnitHeap(5, candidates=np.array([2, 2, 4]))
        assert len(heap) == 2

    def test_empty_candidates(self):
        heap = UnitHeap(5, candidates=np.zeros(0, dtype=np.int64))
        assert len(heap) == 0
        with pytest.raises(IndexError):
            heap.pop_max()

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            UnitHeap(3, candidates=np.array([3]))
        with pytest.raises(InvalidParameterError):
            UnitHeap(3, candidates=np.array([-1]))

    def test_matches_full_heap_with_removes(self):
        """A candidate heap behaves exactly like a full heap whose
        non-candidates were removed up front."""
        rng = np.random.default_rng(11)
        candidates = np.flatnonzero(rng.random(40) < 0.5)
        lazy = UnitHeap(40, candidates=candidates)
        eager = UnitHeap(40)
        for item in np.setdiff1d(np.arange(40), candidates):
            eager.remove(int(item))
        for _ in range(200):
            item = int(rng.integers(0, 40))
            if rng.random() < 0.7:
                lazy.increase(item)
                eager.increase(item)
            else:
                lazy.decrease(item)
                eager.decrease(item)
        assert len(lazy) == len(eager)
        pops = len(lazy)
        assert [lazy.pop_max() for _ in range(pops)] == [
            eager.pop_max() for _ in range(pops)
        ]

    def test_metered_passes_candidates_through(self):
        heap = MeteredUnitHeap(6, candidates=np.array([1, 2]))
        assert len(heap) == 2
        heap.increase(2)
        assert heap.pop_max() == 2
        assert heap.increases == 1
        assert heap.pops == 1
