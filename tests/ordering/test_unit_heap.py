"""Unit and model-based property tests for the unit heap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.ordering import UnitHeap


class TestBasics:
    def test_initial_state(self):
        heap = UnitHeap(3)
        assert len(heap) == 3
        assert all(i in heap for i in range(3))
        assert heap.key_of(1) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            UnitHeap(-1)

    def test_empty_heap(self):
        heap = UnitHeap(0)
        assert len(heap) == 0
        with pytest.raises(IndexError):
            heap.pop_max()
        with pytest.raises(IndexError):
            heap.peek_max_key()

    def test_increase_and_pop(self):
        heap = UnitHeap(3)
        heap.increase(1)
        heap.increase(1)
        heap.increase(2)
        assert heap.peek_max_key() == 2
        assert heap.pop_max() == 1
        assert heap.pop_max() == 2
        assert heap.pop_max() == 0
        assert len(heap) == 0

    def test_decrease(self):
        heap = UnitHeap(2)
        heap.increase(0)
        heap.increase(0)
        heap.decrease(0)
        heap.increase(1)
        # Both at key 1; FIFO tie-break: 0 reached key 1 first... but 0
        # re-entered bucket 1 after the decrease, so 1 may come first.
        # Only the key value is part of the contract.
        assert heap.key_of(0) == 1
        assert heap.key_of(1) == 1

    def test_updates_after_removal_ignored(self):
        heap = UnitHeap(2)
        heap.remove(0)
        heap.increase(0)
        heap.decrease(0)
        assert 0 not in heap
        assert heap.pop_max() == 1

    def test_popped_item_not_resurrected(self):
        heap = UnitHeap(2)
        heap.increase(0)
        assert heap.pop_max() == 0
        heap.increase(0)
        assert heap.pop_max() == 1

    def test_remove_is_idempotent(self):
        heap = UnitHeap(2)
        heap.remove(1)
        heap.remove(1)
        assert len(heap) == 1

    def test_max_key_recovers_after_pops(self):
        heap = UnitHeap(3)
        for _ in range(5):
            heap.increase(0)
        heap.increase(1)
        assert heap.pop_max() == 0
        assert heap.peek_max_key() == 1
        assert heap.pop_max() == 1


@st.composite
def operation_sequences(draw):
    size = draw(st.integers(1, 8))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["inc", "dec", "pop", "remove"]),
                st.integers(0, size - 1),
            ),
            max_size=60,
        )
    )
    return size, ops


class TestModelBased:
    @given(operation_sequences())
    def test_matches_reference_model(self, case):
        """Replay random operations against a dict-based reference."""
        size, ops = case
        heap = UnitHeap(size)
        model: dict[int, int] = {i: 0 for i in range(size)}
        for op, item in ops:
            if op == "inc":
                heap.increase(item)
                if item in model:
                    model[item] += 1
            elif op == "dec":
                heap.decrease(item)
                if item in model:
                    model[item] -= 1
            elif op == "remove":
                heap.remove(item)
                model.pop(item, None)
            elif op == "pop" and model:
                popped = heap.pop_max()
                max_key = max(model.values())
                assert model[popped] == max_key
                del model[popped]
            assert len(heap) == len(model)
            for node, key in model.items():
                assert heap.key_of(node) == key


class TestGorderUsagePattern:
    def test_window_slide_pattern(self):
        """Exercise the exact usage Gorder makes: bursts of increases
        when a node enters the window, matching decreases when it
        leaves, pops in between — keys must never go negative and the
        heap must drain completely."""
        import numpy as np

        rng = np.random.default_rng(5)
        n = 60
        heap = UnitHeap(n)
        window: list[list[int]] = []
        placed = []
        heap.remove(0)
        placed.append(0)
        for step in range(1, n):
            burst = [
                int(rng.integers(0, n)) for _ in range(6)
            ]
            for item in burst:
                heap.increase(item)
            window.append(burst)
            if len(window) > 5:
                for item in window.pop(0):
                    heap.decrease(item)
            chosen = heap.pop_max()
            placed.append(chosen)
        assert sorted(placed) == list(range(n))
        assert len(heap) == 0

    def test_interleaved_increase_decrease_never_corrupts(self):
        heap = UnitHeap(10)
        for _ in range(200):
            heap.increase(3)
            heap.increase(3)
            heap.decrease(3)
        assert heap.key_of(3) == 200
        assert heap.pop_max() == 3
