"""Tests for the alternative Gorder backends (lazy PQ, partitioned)."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph import from_edges, generators
from repro.ordering import (
    gorder_order,
    gorder_order_lazy,
    gorder_partitioned,
    gorder_score,
    gorder_sequence_lazy,
    partition_nodes,
    window_scores,
)
from repro.ordering.metrics import pair_score

from tests.conftest import assert_valid_permutation


@pytest.fixture(scope="module")
def graph():
    return generators.social_graph(120, edges_per_node=5, seed=31)


class TestLazyBackend:
    def test_valid(self, graph):
        assert_valid_permutation(
            gorder_order_lazy(graph), graph.num_nodes
        )

    def test_window_validation(self, graph):
        with pytest.raises(InvalidParameterError):
            gorder_order_lazy(graph, window=0)
        with pytest.raises(InvalidParameterError):
            gorder_order_lazy(graph, hub_threshold=-2)

    def test_empty_graph(self):
        assert gorder_order_lazy(from_edges([], num_nodes=0)).size == 0

    def test_greedy_invariant(self):
        small = generators.social_graph(40, edges_per_node=4, seed=9)
        window = 3
        sequence = gorder_sequence_lazy(small, window=window)
        placed = [int(sequence[0])]
        remaining = set(range(small.num_nodes)) - {placed[0]}
        for i in range(1, small.num_nodes):
            window_nodes = placed[-window:]
            chosen = int(sequence[i])

            def score(v):
                return sum(
                    pair_score(small, u, v) for u in window_nodes
                )

            assert score(chosen) == max(score(v) for v in remaining)
            placed.append(chosen)
            remaining.discard(chosen)

    def test_matches_unit_heap_quality(self, graph):
        """Same greedy, different tie-breaks: the objective values are
        close (identical up to tie-break noise)."""
        fast = gorder_score(graph, gorder_order(graph))
        lazy = gorder_score(graph, gorder_order_lazy(graph))
        assert lazy == pytest.approx(fast, rel=0.1)

    def test_step_scores_match_unit_heap(self, graph):
        from repro.graph import invert_permutation

        window = 5
        fast_scores = window_scores(
            graph, invert_permutation(gorder_order(graph)), window
        )
        lazy_scores = window_scores(
            graph, gorder_sequence_lazy(graph, window=window), window
        )
        assert int(fast_scores.sum()) == pytest.approx(
            int(lazy_scores.sum()), rel=0.1
        )


class TestPartitioned:
    def test_valid(self, graph):
        assert_valid_permutation(
            gorder_partitioned(graph, num_parts=4), graph.num_nodes
        )

    def test_single_part_close_to_plain_gorder(self, graph):
        single = gorder_partitioned(graph, num_parts=1)
        plain = gorder_order(graph)
        # One partition covers everything; only the bisection-derived
        # node enumeration differs, so the objective is close.
        assert gorder_score(graph, single) == pytest.approx(
            gorder_score(graph, plain), rel=0.2
        )

    def test_more_parts_lower_quality_but_valid(self, graph):
        coarse = gorder_partitioned(graph, num_parts=2)
        fine = gorder_partitioned(graph, num_parts=12)
        assert_valid_permutation(fine, graph.num_nodes)
        assert gorder_score(graph, fine) <= gorder_score(
            graph, coarse
        ) * 1.1

    def test_num_parts_validation(self, graph):
        with pytest.raises(InvalidParameterError):
            gorder_partitioned(graph, num_parts=0)

    def test_empty_graph(self):
        assert gorder_partitioned(
            from_edges([], num_nodes=0)
        ).size == 0

    def test_beats_random_on_objective(self, graph):
        from repro.ordering import random_order

        part = gorder_partitioned(graph, num_parts=4)
        rand = random_order(graph, seed=2)
        assert gorder_score(graph, part) > gorder_score(graph, rand)


class TestPartitionNodes:
    def test_covers_all_nodes(self, graph):
        parts = partition_nodes(graph, 5)
        combined = np.sort(np.concatenate(parts))
        assert np.array_equal(combined, np.arange(graph.num_nodes))

    def test_part_count(self, graph):
        assert len(partition_nodes(graph, 5)) == 5

    def test_more_parts_than_nodes(self):
        tiny = from_edges([(0, 1)], num_nodes=2)
        parts = partition_nodes(tiny, 10)
        assert sum(p.shape[0] for p in parts) == 2

    def test_validation(self, graph):
        with pytest.raises(InvalidParameterError):
            partition_nodes(graph, 0)
