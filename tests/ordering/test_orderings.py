"""Tests common to every ordering plus method-specific behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import UnknownOrderingError
from repro.graph import from_edges, generators
from repro.ordering import (
    ORDERING_NAMES,
    REGISTRY,
    bandwidth,
    bisection_order,
    chdfs_order,
    compute_ordering,
    indegsort_order,
    ldg_order,
    original_order,
    random_order,
    rcm_order,
    slashburn_order,
    spec,
)

from tests.conftest import assert_valid_permutation, graph_strategy


class TestRegistry:
    def test_ten_headline_orderings(self):
        assert len(ORDERING_NAMES) == 10

    def test_figure_order(self):
        assert ORDERING_NAMES[0] == "original"
        assert ORDERING_NAMES[-1] == "gorder"

    def test_unknown_name(self):
        with pytest.raises(UnknownOrderingError, match="nosuch"):
            compute_ordering("nosuch", from_edges([(0, 1)]))

    def test_case_insensitive_lookup(self):
        assert spec("Gorder").name == "gorder"

    def test_bisect_is_extension_not_headline(self):
        assert "bisect" in REGISTRY
        assert "bisect" not in ORDERING_NAMES


class TestAllOrderingsAreValidPermutations:
    @pytest.mark.parametrize("name", list(REGISTRY))
    def test_on_social_graph(self, small_social, name):
        perm = compute_ordering(name, small_social, seed=3)
        assert_valid_permutation(perm, small_social.num_nodes)

    @pytest.mark.parametrize("name", list(REGISTRY))
    def test_on_web_graph(self, small_web, name):
        perm = compute_ordering(name, small_web, seed=3)
        assert_valid_permutation(perm, small_web.num_nodes)

    @pytest.mark.parametrize("name", list(REGISTRY))
    def test_on_graph_with_isolated_nodes(self, name):
        graph = from_edges([(0, 1), (1, 0)], num_nodes=6)
        perm = compute_ordering(name, graph, seed=3)
        assert_valid_permutation(perm, 6)

    @pytest.mark.parametrize("name", list(REGISTRY))
    def test_on_edgeless_graph(self, name):
        graph = from_edges([], num_nodes=4)
        perm = compute_ordering(name, graph, seed=3)
        assert_valid_permutation(perm, 4)

    @pytest.mark.parametrize("name", list(REGISTRY))
    def test_on_single_node(self, name):
        graph = from_edges([], num_nodes=1)
        perm = compute_ordering(name, graph, seed=3)
        assert_valid_permutation(perm, 1)

    @settings(max_examples=15, deadline=None)
    @given(graph_strategy())
    def test_property_all_orderings(self, graph):
        for name in REGISTRY:
            perm = compute_ordering(name, graph, seed=1)
            assert_valid_permutation(perm, graph.num_nodes)


class TestDeterminism:
    @pytest.mark.parametrize(
        "name",
        [n for n in REGISTRY if REGISTRY[n].deterministic],
    )
    def test_deterministic_orderings_ignore_seed(self, small_web, name):
        a = compute_ordering(name, small_web, seed=1)
        b = compute_ordering(name, small_web, seed=99)
        assert np.array_equal(a, b)

    def test_random_ordering_depends_on_seed(self, small_web):
        a = random_order(small_web, seed=1)
        b = random_order(small_web, seed=2)
        assert not np.array_equal(a, b)

    def test_random_ordering_reproducible(self, small_web):
        assert np.array_equal(
            random_order(small_web, seed=5), random_order(small_web, seed=5)
        )


class TestOriginal:
    def test_identity(self, small_social):
        perm = original_order(small_social)
        assert np.array_equal(perm, np.arange(small_social.num_nodes))


class TestInDegSort:
    def test_descending_in_degree(self, small_web):
        perm = indegsort_order(small_web)
        in_degrees = small_web.in_degrees()
        by_position = np.empty(small_web.num_nodes, dtype=np.int64)
        by_position[perm] = in_degrees
        assert np.all(np.diff(by_position) <= 0)

    def test_stable_ties(self):
        graph = from_edges([], num_nodes=5)  # all degrees zero
        perm = indegsort_order(graph)
        assert perm.tolist() == [0, 1, 2, 3, 4]


class TestChDFS:
    def test_follows_dfs_preorder(self):
        # 0 -> 1, 0 -> 2, 1 -> 3: stack discipline pops 1 before 2,
        # and 3 is pushed while 2 waits.
        graph = from_edges([(0, 1), (0, 2), (1, 3)])
        perm = chdfs_order(graph)
        # visit order: 0, 1, 3, 2
        assert perm.tolist() == [0, 1, 3, 2]

    def test_covers_disconnected(self, two_components):
        perm = chdfs_order(two_components)
        assert_valid_permutation(perm, 6)


class TestRCM:
    def test_reduces_grid_bandwidth(self):
        grid = generators.grid(12, 12)
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(grid.num_nodes).astype(np.int64)
        assert bandwidth(grid, rcm_order(grid)) < bandwidth(
            grid, shuffled
        )

    def test_matches_scipy_on_grid(self):
        import scipy.sparse as sp
        from scipy.sparse.csgraph import reverse_cuthill_mckee

        grid = generators.grid(8, 8)
        sources, targets = grid.edge_array()
        matrix = sp.csr_matrix(
            (np.ones(sources.shape[0]), (sources, targets)),
            shape=(grid.num_nodes, grid.num_nodes),
        )
        sequence = reverse_cuthill_mckee(matrix, symmetric_mode=True)
        perm = np.empty(grid.num_nodes, dtype=np.int64)
        perm[sequence] = np.arange(grid.num_nodes)
        ours = bandwidth(grid, rcm_order(grid))
        scipys = bandwidth(grid, perm)
        # Both should land in the same ballpark (tie-breaks differ).
        assert ours <= 2 * scipys


class TestSlashBurn:
    def test_hub_goes_first(self):
        graph = generators.star(10)
        perm = slashburn_order(graph)
        assert perm[0] == 0  # the hub takes position 0

    def test_isolated_nodes_go_last(self):
        graph = from_edges([(0, 1), (1, 0)], num_nodes=5)
        perm = slashburn_order(graph)
        # Nodes 2, 3, 4 are isolated; they occupy the tail.
        assert sorted(int(perm[u]) for u in (2, 3, 4)) == [2, 3, 4]

    def test_star_leaves_burned_to_tail(self):
        graph = generators.star(6)
        perm = slashburn_order(graph)
        leaf_positions = sorted(int(perm[u]) for u in range(1, 7))
        assert leaf_positions == [1, 2, 3, 4, 5, 6]


class TestLDG:
    def test_bin_size_validation(self, small_web):
        with pytest.raises(Exception):
            ldg_order(small_web, bin_size=0)

    def test_neighbors_gravitate_to_same_bin(self):
        # Two cliques of 4 should each fit one bin of size 4.
        edges = []
        for block in (0, 4):
            for u in range(block, block + 4):
                for v in range(block, block + 4):
                    if u != v:
                        edges.append((u, v))
        graph = from_edges(edges)
        perm = ldg_order(graph, bin_size=4)
        bins = {int(perm[u]) // 4 for u in range(4)}
        assert len(bins) == 1  # first clique in one bin
        bins = {int(perm[u]) // 4 for u in range(4, 8)}
        assert len(bins) == 1


class TestBisect:
    def test_leaf_size_validation(self, small_web):
        with pytest.raises(Exception):
            bisection_order(small_web, leaf_size=0)

    def test_halves_are_contiguous(self):
        # Two cliques joined by one edge: bisection should keep each
        # clique inside one contiguous half.
        edges = []
        for block in (0, 8):
            for u in range(block, block + 8):
                for v in range(block, block + 8):
                    if u != v:
                        edges.append((u, v))
        edges.append((0, 8))
        graph = from_edges(edges)
        perm = bisection_order(graph, leaf_size=8)
        first_half = {u for u in range(16) if perm[u] < 8}
        assert first_half in ({*range(8)}, {*range(8, 16)})
