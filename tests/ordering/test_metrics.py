"""Unit and property tests for the arrangement quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.graph import from_edges, identity_permutation
from repro.ordering import (
    average_gap,
    bandwidth,
    gorder_score,
    gorder_score_bruteforce,
    minla_energy,
    minloga_energy,
    pair_score,
)

from tests.conftest import graph_strategy


class TestPairScore:
    def test_neighbour_score(self):
        graph = from_edges([(0, 1), (1, 0), (0, 2)])
        assert pair_score(graph, 0, 1) == 2  # both directions
        assert pair_score(graph, 0, 2) == 1  # one direction

    def test_sibling_score(self):
        # 2 -> 0 and 2 -> 1: common in-neighbour of (0, 1).
        graph = from_edges([(2, 0), (2, 1)])
        assert pair_score(graph, 0, 1) == 1

    def test_combined(self):
        graph = from_edges([(2, 0), (2, 1), (3, 0), (3, 1), (0, 1)])
        # two common in-neighbours + one edge
        assert pair_score(graph, 0, 1) == 3

    def test_symmetric(self, small_social):
        for u, v in [(0, 1), (5, 9), (3, 100)]:
            assert pair_score(small_social, u, v) == pair_score(
                small_social, v, u
            )

    def test_self_pair_rejected(self, triangle):
        with pytest.raises(InvalidParameterError):
            pair_score(triangle, 1, 1)


class TestGorderScore:
    def test_window_validation(self, triangle):
        with pytest.raises(InvalidParameterError):
            gorder_score(triangle, identity_permutation(3), window=0)
        with pytest.raises(InvalidParameterError):
            gorder_score_bruteforce(
                triangle, identity_permutation(3), window=0
            )

    def test_known_value(self):
        # Path 0 -> 1 -> 2 in identity order with window 1:
        # pairs (1,0) and (2,1), each S = 1 (one edge, no siblings).
        graph = from_edges([(0, 1), (1, 2)])
        assert gorder_score(graph, identity_permutation(3), window=1) == 2

    @settings(max_examples=30, deadline=None)
    @given(graph_strategy(max_nodes=8, max_edges=20), st.integers(1, 4))
    def test_fast_matches_bruteforce(self, graph, window):
        n = graph.num_nodes
        perm = np.random.default_rng(n).permutation(n).astype(np.int64)
        assert gorder_score(graph, perm, window) == (
            gorder_score_bruteforce(graph, perm, window)
        )

    @settings(max_examples=20, deadline=None)
    @given(graph_strategy(max_nodes=8, max_edges=20))
    def test_score_monotone_in_window(self, graph):
        perm = identity_permutation(graph.num_nodes)
        scores = [
            gorder_score(graph, perm, window)
            for window in (1, 2, 4, 8)
        ]
        assert scores == sorted(scores)


class TestEnergies:
    def test_minla_path(self):
        graph = from_edges([(0, 1), (1, 2)])
        assert minla_energy(graph, identity_permutation(3)) == 2
        assert minla_energy(graph, np.array([0, 2, 1])) == 3

    def test_minloga_zero_for_unit_gaps(self):
        graph = from_edges([(0, 1), (1, 2)])
        assert minloga_energy(graph, identity_permutation(3)) == 0.0

    def test_minloga_value(self):
        graph = from_edges([(0, 2)])
        expected = np.log(2.0)
        assert minloga_energy(
            graph, identity_permutation(3)
        ) == pytest.approx(expected)

    def test_bandwidth(self):
        graph = from_edges([(0, 3), (1, 2)])
        assert bandwidth(graph, identity_permutation(4)) == 3

    def test_bandwidth_empty_graph(self):
        graph = from_edges([], num_nodes=3)
        assert bandwidth(graph, identity_permutation(3)) == 0

    def test_average_gap(self):
        graph = from_edges([(0, 1), (0, 3)])
        assert average_gap(graph, identity_permutation(4)) == 2.0

    def test_average_gap_empty(self):
        graph = from_edges([], num_nodes=2)
        assert average_gap(graph, identity_permutation(2)) == 0.0

    @settings(max_examples=20, deadline=None)
    @given(graph_strategy())
    def test_energy_invariant_under_reflection(self, graph):
        """Reversing the arrangement preserves all gap statistics."""
        n = graph.num_nodes
        perm = identity_permutation(n)
        reflected = (n - 1) - perm
        assert minla_energy(graph, perm) == minla_energy(
            graph, reflected
        )
        assert bandwidth(graph, perm) == bandwidth(graph, reflected)


class TestMetricConsistency:
    """Cross-metric sanity on realistic generator output."""

    def test_gorder_improves_every_locality_proxy_vs_random(self):
        from repro.graph import generators
        from repro.ordering import gorder_order, random_order

        graph = generators.web_graph(
            800, pages_per_host=40, out_degree=8, seed=12
        )
        gorder_perm = gorder_order(graph)
        random_perm = random_order(graph, seed=1)
        assert gorder_score(graph, gorder_perm) > gorder_score(
            graph, random_perm
        )
        assert average_gap(graph, gorder_perm) < average_gap(
            graph, random_perm
        )

    def test_minla_energy_equals_gap_times_edges(self):
        from repro.graph import generators, identity_permutation

        graph = generators.social_graph(120, edges_per_node=4, seed=9)
        perm = identity_permutation(graph.num_nodes)
        assert minla_energy(graph, perm) == pytest.approx(
            average_gap(graph, perm) * graph.num_edges
        )

    def test_minloga_never_exceeds_log_of_minla(self):
        """By Jensen: mean(log gap) <= log(mean gap)."""
        import math

        from repro.graph import generators, identity_permutation

        graph = generators.social_graph(120, edges_per_node=4, seed=9)
        perm = identity_permutation(graph.num_nodes)
        mean_log = minloga_energy(graph, perm) / graph.num_edges
        log_mean = math.log(average_gap(graph, perm))
        assert mean_log <= log_mean + 1e-9
