"""Tests for the lightweight follow-on reorderings."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph import from_edges, generators
from repro.ordering import (
    dbg_order,
    hubcluster_order,
    hubsort_order,
    indegsort_order,
)

from tests.conftest import assert_valid_permutation


@pytest.fixture(scope="module")
def skewed():
    return generators.web_graph(
        500, pages_per_host=25, out_degree=8, seed=13
    )


class TestHubSort:
    def test_valid(self, skewed):
        assert_valid_permutation(
            hubsort_order(skewed), skewed.num_nodes
        )

    def test_hubs_before_cold(self, skewed):
        perm = hubsort_order(skewed)
        degrees = skewed.in_degrees()
        hubs = degrees > degrees.mean()
        assert int(perm[hubs].max()) < int(perm[~hubs].min())

    def test_hubs_sorted_by_degree(self, skewed):
        perm = hubsort_order(skewed)
        degrees = skewed.in_degrees()
        hubs = np.flatnonzero(degrees > degrees.mean())
        hub_by_position = hubs[np.argsort(perm[hubs])]
        hub_degrees = degrees[hub_by_position]
        assert np.all(np.diff(hub_degrees) <= 0)

    def test_cold_tail_keeps_original_order(self, skewed):
        perm = hubsort_order(skewed)
        degrees = skewed.in_degrees()
        cold = np.flatnonzero(degrees <= degrees.mean())
        assert np.all(np.diff(perm[cold]) > 0)

    def test_star_hub_first(self):
        graph = generators.star(10)
        assert hubsort_order(graph)[0] == 0

    def test_empty_graph(self):
        graph = from_edges([], num_nodes=0)
        assert hubsort_order(graph).shape == (0,)


class TestHubCluster:
    def test_valid(self, skewed):
        assert_valid_permutation(
            hubcluster_order(skewed), skewed.num_nodes
        )

    def test_hubs_keep_relative_order(self, skewed):
        perm = hubcluster_order(skewed)
        degrees = skewed.in_degrees()
        hubs = np.flatnonzero(degrees > degrees.mean())
        assert np.all(np.diff(perm[hubs]) > 0)

    def test_hubs_before_cold(self, skewed):
        perm = hubcluster_order(skewed)
        degrees = skewed.in_degrees()
        hub_mask = degrees > degrees.mean()
        assert int(perm[hub_mask].max()) < int(perm[~hub_mask].min())

    def test_all_same_degree_is_identity(self):
        graph = generators.ring(12)
        perm = hubcluster_order(graph)
        # No node exceeds the mean degree, so nothing is a hub and the
        # order is untouched.
        assert np.array_equal(perm, np.arange(12))


class TestDBG:
    def test_valid(self, skewed):
        assert_valid_permutation(dbg_order(skewed), skewed.num_nodes)

    def test_classes_descend(self, skewed):
        perm = dbg_order(skewed)
        degrees = skewed.in_degrees()
        classes = np.minimum(
            np.floor(np.log2(degrees + 1)).astype(np.int64), 7
        )
        class_by_position = np.empty(skewed.num_nodes, dtype=np.int64)
        class_by_position[perm] = classes
        assert np.all(np.diff(class_by_position) <= 0)

    def test_within_class_original_order(self, skewed):
        perm = dbg_order(skewed)
        degrees = skewed.in_degrees()
        classes = np.minimum(
            np.floor(np.log2(degrees + 1)).astype(np.int64), 7
        )
        for value in np.unique(classes):
            members = np.flatnonzero(classes == value)
            assert np.all(np.diff(perm[members]) > 0)

    def test_coarser_than_indegsort(self, skewed):
        """DBG preserves more of the original order than a full sort:
        it never reorders within a class, whereas InDegSort does."""
        dbg_perm = dbg_order(skewed)
        full_sort = indegsort_order(skewed)
        identity = np.arange(skewed.num_nodes)
        dbg_moved = int(np.abs(dbg_perm - identity).sum())
        sort_moved = int(np.abs(full_sort - identity).sum())
        assert dbg_moved <= sort_moved

    def test_num_groups_validation(self, skewed):
        with pytest.raises(InvalidParameterError):
            dbg_order(skewed, num_groups=0)

    def test_single_group_is_identity(self, skewed):
        perm = dbg_order(skewed, num_groups=1)
        assert np.array_equal(perm, np.arange(skewed.num_nodes))
