"""Tests for the lightweight follow-on reorderings."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph import from_edges, generators
from repro.ordering import (
    dbg_order,
    hubcluster_order,
    hubsort_order,
    indegsort_order,
)

from tests.conftest import assert_valid_permutation


@pytest.fixture(scope="module")
def skewed():
    return generators.web_graph(
        500, pages_per_host=25, out_degree=8, seed=13
    )


class TestHubSort:
    def test_valid(self, skewed):
        assert_valid_permutation(
            hubsort_order(skewed), skewed.num_nodes
        )

    def test_hubs_before_cold(self, skewed):
        perm = hubsort_order(skewed)
        degrees = skewed.in_degrees()
        hubs = degrees > degrees.mean()
        assert int(perm[hubs].max()) < int(perm[~hubs].min())

    def test_hubs_sorted_by_degree(self, skewed):
        perm = hubsort_order(skewed)
        degrees = skewed.in_degrees()
        hubs = np.flatnonzero(degrees > degrees.mean())
        hub_by_position = hubs[np.argsort(perm[hubs])]
        hub_degrees = degrees[hub_by_position]
        assert np.all(np.diff(hub_degrees) <= 0)

    def test_cold_tail_keeps_original_order(self, skewed):
        perm = hubsort_order(skewed)
        degrees = skewed.in_degrees()
        cold = np.flatnonzero(degrees <= degrees.mean())
        assert np.all(np.diff(perm[cold]) > 0)

    def test_star_hub_first(self):
        graph = generators.star(10)
        assert hubsort_order(graph)[0] == 0

    def test_empty_graph(self):
        graph = from_edges([], num_nodes=0)
        assert hubsort_order(graph).shape == (0,)


class TestHubCluster:
    def test_valid(self, skewed):
        assert_valid_permutation(
            hubcluster_order(skewed), skewed.num_nodes
        )

    def test_hubs_keep_relative_order(self, skewed):
        perm = hubcluster_order(skewed)
        degrees = skewed.in_degrees()
        hubs = np.flatnonzero(degrees > degrees.mean())
        assert np.all(np.diff(perm[hubs]) > 0)

    def test_hubs_before_cold(self, skewed):
        perm = hubcluster_order(skewed)
        degrees = skewed.in_degrees()
        hub_mask = degrees > degrees.mean()
        assert int(perm[hub_mask].max()) < int(perm[~hub_mask].min())

    def test_all_same_degree_is_identity(self):
        graph = generators.ring(12)
        perm = hubcluster_order(graph)
        # No node exceeds the mean degree, so nothing is a hub and the
        # order is untouched.
        assert np.array_equal(perm, np.arange(12))


class TestDBG:
    def test_valid(self, skewed):
        assert_valid_permutation(dbg_order(skewed), skewed.num_nodes)

    def test_classes_descend(self, skewed):
        perm = dbg_order(skewed)
        degrees = skewed.in_degrees()
        classes = np.minimum(
            np.floor(np.log2(degrees + 1)).astype(np.int64), 7
        )
        class_by_position = np.empty(skewed.num_nodes, dtype=np.int64)
        class_by_position[perm] = classes
        assert np.all(np.diff(class_by_position) <= 0)

    def test_within_class_original_order(self, skewed):
        perm = dbg_order(skewed)
        degrees = skewed.in_degrees()
        classes = np.minimum(
            np.floor(np.log2(degrees + 1)).astype(np.int64), 7
        )
        for value in np.unique(classes):
            members = np.flatnonzero(classes == value)
            assert np.all(np.diff(perm[members]) > 0)

    def test_coarser_than_indegsort(self, skewed):
        """DBG preserves more of the original order than a full sort:
        it never reorders within a class, whereas InDegSort does."""
        dbg_perm = dbg_order(skewed)
        full_sort = indegsort_order(skewed)
        identity = np.arange(skewed.num_nodes)
        dbg_moved = int(np.abs(dbg_perm - identity).sum())
        sort_moved = int(np.abs(full_sort - identity).sum())
        assert dbg_moved <= sort_moved

    def test_num_groups_validation(self, skewed):
        with pytest.raises(InvalidParameterError):
            dbg_order(skewed, num_groups=0)

    def test_single_group_is_identity(self, skewed):
        perm = dbg_order(skewed, num_groups=1)
        assert np.array_equal(perm, np.arange(skewed.num_nodes))


class TestDBGClasses:
    """Integer degree-class computation (regression for the float
    ``np.log2`` cast, which mis-rounds near power-of-two degrees)."""

    def test_matches_reference_oracle(self):
        from repro.ordering import dbg_classes, dbg_classes_reference

        rng = np.random.default_rng(3)
        degrees = rng.integers(0, 10_000, size=400)
        assert dbg_classes(degrees, 8).tolist() == (
            dbg_classes_reference(degrees, 8)
        )

    def test_class_boundaries_exact(self):
        from repro.ordering import dbg_classes

        # Class k covers degrees [2^k - 1, 2^(k+1) - 1).
        degrees = np.array([0, 1, 2, 3, 6, 7, 14, 15])
        assert dbg_classes(degrees, 8).tolist() == [
            0, 1, 1, 2, 2, 3, 3, 4
        ]

    def test_large_degree_precision(self):
        """float64 rounds 2**54 - 1 up to 2**54, so the old
        ``np.floor(np.log2(d + 1))`` put degree 2**54 - 2 in class 54;
        its true class is 53."""
        from repro.ordering import dbg_classes, dbg_classes_reference

        degrees = np.array([2**54 - 2], dtype=np.int64)
        assert dbg_classes(degrees, 64).tolist() == [53]
        assert dbg_classes_reference(degrees, 64) == [53]

    def test_monotone_in_degree(self):
        from repro.ordering import dbg_classes

        rng = np.random.default_rng(7)
        degrees = np.sort(rng.integers(0, 2**62, size=300))
        classes = dbg_classes(degrees, 64)
        assert np.all(np.diff(classes) >= 0)

    def test_capped_at_num_groups(self):
        from repro.ordering import dbg_classes

        degrees = np.array([0, 2**40, 2**62])
        assert dbg_classes(degrees, 4).tolist() == [0, 3, 3]

    def test_num_groups_validation(self):
        from repro.ordering import dbg_classes, dbg_classes_reference
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            dbg_classes(np.array([1]), 0)
        with pytest.raises(InvalidParameterError):
            dbg_classes_reference(np.array([1]), 0)

    def test_order_uses_integer_classes(self, skewed):
        """dbg_order groups exactly by the integer classes."""
        from repro.ordering import dbg_classes

        perm = dbg_order(skewed)
        classes = dbg_classes(skewed.in_degrees(), 8)
        by_position = np.empty(skewed.num_nodes, dtype=np.int64)
        by_position[perm] = classes
        assert np.all(np.diff(by_position) <= 0)


class TestRegularGraphs:
    """Hub-based orderings are well-defined with zero hubs."""

    def test_hubsort_identity_on_ring(self):
        graph = generators.ring(16)
        assert np.array_equal(hubsort_order(graph), np.arange(16))

    def test_hubcluster_identity_on_ring(self):
        graph = generators.ring(16)
        assert np.array_equal(hubcluster_order(graph), np.arange(16))

    def test_dbg_single_class_on_ring(self):
        graph = generators.ring(16)
        assert np.array_equal(dbg_order(graph), np.arange(16))


class TestBoba:
    """BOBA-style first-touch ordering: parallel block-based packing."""

    @staticmethod
    def _first_touch_oracle(graph):
        """Pure-python single-pass first-touch over the edge stream."""
        sources, targets = graph.edge_array()
        seen = {}
        for s, t in zip(sources, targets):
            for v in (int(s), int(t)):
                if v not in seen:
                    seen[v] = len(seen)
        perm = np.empty(graph.num_nodes, dtype=np.int64)
        tail = len(seen)
        for v in range(graph.num_nodes):
            if v in seen:
                perm[v] = seen[v]
            else:
                perm[v] = tail
                tail += 1
        return perm

    def test_valid(self, skewed):
        from repro.ordering import boba_order

        assert_valid_permutation(
            boba_order(skewed), skewed.num_nodes
        )

    def test_matches_single_pass_oracle(self, skewed):
        from repro.ordering import boba_order

        expected = self._first_touch_oracle(skewed)
        for num_parts in (1, 4):
            assert np.array_equal(
                boba_order(skewed, num_parts=num_parts), expected
            )

    def test_part_count_invariant(self, skewed):
        from repro.ordering import boba_order

        reference = boba_order(skewed, num_parts=1)
        for num_parts in (2, 3, 7, 64):
            assert np.array_equal(
                boba_order(skewed, num_parts=num_parts), reference
            )

    def test_worker_count_invariant(self, skewed):
        from repro.ordering import boba_order

        serial = boba_order(skewed, num_parts=4, workers=1)
        parallel = boba_order(skewed, num_parts=4, workers=2)
        assert np.array_equal(serial, parallel)

    def test_seed_ignored(self, skewed):
        from repro.ordering import boba_order

        assert np.array_equal(
            boba_order(skewed, seed=0), boba_order(skewed, seed=99)
        )

    def test_untouched_nodes_fill_tail_in_id_order(self):
        from repro.ordering import boba_order

        graph = from_edges([(3, 1)], num_nodes=6)
        perm = boba_order(graph)
        # Stream touches 3 then 1; isolated 0, 2, 4, 5 follow in order.
        assert perm.tolist() == [2, 1, 3, 0, 4, 5]

    def test_empty_graph(self):
        from repro.ordering import boba_order

        graph = from_edges([], num_nodes=0)
        assert boba_order(graph).shape == (0,)

    def test_validation(self, skewed):
        from repro.ordering import boba_order

        with pytest.raises(InvalidParameterError):
            boba_order(skewed, num_parts=0)
        with pytest.raises(InvalidParameterError):
            boba_order(skewed, workers=0)
