"""Tests for the gap-encoding compression estimate (extension)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import InvalidParameterError
from repro.graph import from_edges, generators, identity_permutation
from repro.ordering import (
    bits_per_edge,
    compression_ratio,
    elias_gamma_bits,
    gap_encoding_bits,
    gorder_order,
    random_order,
)

from tests.conftest import graph_strategy


class TestEliasGamma:
    def test_known_lengths(self):
        # gamma(v+1): 0 -> 1 bit, 1 -> 3 bits, 2 -> 3, 3 -> 5 ...
        assert elias_gamma_bits(np.array([0])) == 1
        assert elias_gamma_bits(np.array([1])) == 3
        assert elias_gamma_bits(np.array([2])) == 3
        assert elias_gamma_bits(np.array([3])) == 5
        assert elias_gamma_bits(np.array([7])) == 7

    def test_empty(self):
        assert elias_gamma_bits(np.array([], dtype=np.int64)) == 0

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            elias_gamma_bits(np.array([-1]))

    def test_additive(self):
        values = np.array([0, 1, 5, 9])
        total = sum(
            elias_gamma_bits(values[i:i + 1]) for i in range(4)
        )
        assert elias_gamma_bits(values) == total


class TestGapEncoding:
    def test_empty_graph(self):
        graph = from_edges([], num_nodes=4)
        assert gap_encoding_bits(graph, identity_permutation(4)) == 0

    def test_adjacent_ids_cheap(self):
        near = from_edges([(0, 1)])
        far = from_edges([(0, 1000)], num_nodes=1001)
        near_bits = gap_encoding_bits(near, identity_permutation(2))
        far_bits = gap_encoding_bits(far, identity_permutation(1001))
        assert near_bits < far_bits

    def test_gorder_compresses_better_than_random(self):
        graph = generators.web_graph(
            1500, pages_per_host=60, out_degree=10, seed=8
        )
        gorder_bits = gap_encoding_bits(graph, gorder_order(graph))
        random_bits = gap_encoding_bits(
            graph, random_order(graph, seed=1)
        )
        assert gorder_bits < random_bits

    def test_compression_ratio_definition(self):
        graph = generators.web_graph(600, out_degree=8, seed=8)
        baseline = random_order(graph, seed=1)
        perm = gorder_order(graph)
        ratio = compression_ratio(graph, perm, baseline)
        assert ratio == pytest.approx(
            gap_encoding_bits(graph, baseline)
            / gap_encoding_bits(graph, perm)
        )
        assert ratio > 1.0

    def test_bits_per_edge(self):
        graph = generators.ring(32)
        per_edge = bits_per_edge(graph, identity_permutation(32))
        # Every edge is a +1 neighbour: zig-zag(1) = 2, gamma = 3 bits,
        # except the wrap edge (n-1 -> 0).
        assert 2.0 < per_edge < 6.0

    def test_bits_per_edge_empty(self):
        graph = from_edges([], num_nodes=3)
        assert bits_per_edge(graph, identity_permutation(3)) == 0.0

    @settings(max_examples=20, deadline=None)
    @given(graph_strategy())
    def test_positive_for_any_graph(self, graph):
        perm = identity_permutation(graph.num_nodes)
        bits = gap_encoding_bits(graph, perm)
        assert bits >= 0
        if graph.num_edges:
            assert bits > 0
