"""Tests for the structural reordering-benefit predictors."""

import json
import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph import from_edges, generators
from repro.ordering import (
    StructuralPredictors,
    average_reuse_distance,
    compute_predictors,
    diameter_proxy,
    packing_factor,
    predicted_gain_fraction,
)


@pytest.fixture()
def tiny_hub():
    """Node 1 is the only hub: in-degrees [1, 3, 0, 0]."""
    return from_edges([(0, 1), (2, 1), (3, 1), (1, 0)])


class TestHandComputedValues:
    def test_tiny_hub_graph(self, tiny_hub):
        predictors = compute_predictors(tiny_hub)
        assert predictors.nodes == 4
        assert predictors.edges == 4
        assert predictors.mean_degree == 1.0
        # Max in-degree 3 over mean degree 1.
        assert predictors.degree_skew == 3.0
        # One hub (node 1) out of four nodes.
        assert predictors.hub_fraction == 0.25
        # 3 of 4 edges target the hub.
        assert predictors.hub_concentration == 0.75
        # A single hub always fits one line.
        assert predictors.packing_factor == 1.0

    def test_reuse_distance_hand_computed(self, tiny_hub):
        # Adjacency stream is [1, 0, 1, 1]; vertex 1 repeats at
        # positions 0, 2, 3 -> gaps 2 and 1 -> mean 1.5.
        assert average_reuse_distance(tiny_hub) == 1.5

    def test_reuse_distance_no_repeats(self):
        graph = from_edges([(0, 1), (1, 2)])
        assert average_reuse_distance(graph) == 0.0

    def test_diameter_proxy_cycle(self):
        graph = from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        # Double sweep on a directed 4-cycle: eccentricity 3.
        assert diameter_proxy(graph) == 3

    def test_packing_factor_scattered_hubs(self):
        # Two hubs (0 and 31) land on two distinct 16-node lines but
        # would fit one -> factor 2.
        graph = from_edges(
            [(1, 0), (2, 0), (3, 31), (4, 31)], num_nodes=32
        )
        assert packing_factor(graph, line_nodes=16) == 2.0

    def test_packing_factor_packed_hubs(self):
        # Hubs 0 and 1 share a line -> already minimal.
        graph = from_edges(
            [(2, 0), (3, 0), (4, 1), (5, 1)], num_nodes=32
        )
        assert packing_factor(graph, line_nodes=16) == 1.0

    def test_packing_factor_validation(self, tiny_hub):
        with pytest.raises(InvalidParameterError):
            packing_factor(tiny_hub, line_nodes=0)


class TestNeutralValues:
    def test_empty_graph(self):
        predictors = compute_predictors(from_edges([], num_nodes=0))
        assert predictors.degree_skew == 1.0
        assert predictors.hub_concentration == 0.0
        assert predictors.packing_factor == 1.0
        assert predictors.avg_reuse_distance == 0.0
        assert predictors.diameter_proxy == 0

    def test_edgeless_graph(self):
        predictors = compute_predictors(from_edges([], num_nodes=7))
        assert predictors.nodes == 7
        assert predictors.edges == 0
        assert predictors.mean_degree == 0.0
        assert predictors.degree_skew == 1.0

    def test_regular_graph_has_no_hubs(self):
        predictors = compute_predictors(generators.ring(12))
        assert predictors.hub_fraction == 0.0
        assert predictors.hub_concentration == 0.0
        assert predictors.packing_factor == 1.0


class TestSerialisation:
    def test_as_dict_round_trips_json(self, tiny_hub):
        payload = compute_predictors(tiny_hub).as_dict()
        restored = json.loads(json.dumps(payload))
        assert restored["degree_skew"] == 3.0
        assert set(restored) == {
            "nodes", "edges", "mean_degree", "degree_skew",
            "hub_fraction", "hub_concentration", "packing_factor",
            "avg_reuse_distance", "diameter_proxy",
        }


def _predictors(**overrides):
    base = dict(
        nodes=100, edges=1000, mean_degree=10.0, degree_skew=1.0,
        hub_fraction=0.0, hub_concentration=0.0, packing_factor=1.0,
        avg_reuse_distance=0.0, diameter_proxy=3,
    )
    base.update(overrides)
    return StructuralPredictors(**base)


class TestGainFraction:
    def test_neutral_graph_floor(self):
        assert predicted_gain_fraction(_predictors()) == 0.05

    def test_saturates_at_cap(self):
        saturated = _predictors(
            degree_skew=2.0**40, packing_factor=8.0,
            hub_concentration=1.0,
        )
        assert predicted_gain_fraction(saturated) == 0.6

    def test_monotone_in_skew(self):
        low = predicted_gain_fraction(_predictors(degree_skew=2.0))
        high = predicted_gain_fraction(_predictors(degree_skew=16.0))
        assert 0.05 < low < high <= 0.6

    def test_hand_computed_value(self):
        predictors = _predictors(
            degree_skew=4.0, packing_factor=1.5, hub_concentration=0.5
        )
        expected = 0.05 + 0.08 * 2 + 0.1 * 0.5 + 0.2 * 0.5
        assert predicted_gain_fraction(predictors) == pytest.approx(
            expected
        )

    def test_skew_below_one_clamped(self):
        assert math.isfinite(
            predicted_gain_fraction(_predictors(degree_skew=0.5))
        )
        assert predicted_gain_fraction(
            _predictors(degree_skew=0.5)
        ) == 0.05


class TestAcceptanceDatasets:
    def test_skewed_graph_beats_regular_on_gain(self):
        skewed = generators.web_graph(
            400, pages_per_host=20, out_degree=6, seed=5
        )
        regular = generators.ring(400)
        assert predicted_gain_fraction(
            compute_predictors(skewed)
        ) > predicted_gain_fraction(compute_predictors(regular))

    def test_predictors_deterministic(self):
        graph = generators.social_graph(200, edges_per_node=5, seed=3)
        assert compute_predictors(graph) == compute_predictors(graph)

    def test_reuse_distance_positive_on_real_analogue(self):
        graph = generators.web_graph(
            300, pages_per_host=15, out_degree=6, seed=11
        )
        assert average_reuse_distance(graph) > 0
        assert np.isfinite(average_reuse_distance(graph))
