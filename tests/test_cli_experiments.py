"""CLI experiment subcommands on a narrowed dataset set.

The heavy subcommands (speedup/ranking/stall/ordering-time) honour
``REPRO_DATASETS``; pinning it to epinion keeps these end-to-end tests
fast while covering the code paths for real.
"""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def narrow_profile(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "quick")
    monkeypatch.setenv("REPRO_DATASETS", "epinion")


class TestExperimentCommands:
    def test_ordering_time(self, capsys):
        assert main(["ordering-time"]) == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "gorder" in output

    def test_stall(self, capsys):
        assert main(["stall", "--dataset", "epinion"]) == 0
        output = capsys.readouterr().out
        assert "original order" in output
        assert "gorder order" in output
        assert "stall%" in output

    def test_speedup(self, capsys):
        assert main(["speedup"]) == 0
        output = capsys.readouterr().out
        assert "relative to Gorder" in output
        assert "random" in output

    def test_ranking(self, capsys):
        assert main(["ranking"]) == 0
        output = capsys.readouterr().out
        assert "Figure 6" in output
        assert "#1" in output
