"""CLI experiment subcommands on a narrowed dataset set.

The heavy subcommands (speedup/ranking/stall/ordering-time) honour
``REPRO_DATASETS``; pinning it to epinion keeps these end-to-end tests
fast while covering the code paths for real.
"""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def narrow_profile(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "quick")
    monkeypatch.setenv("REPRO_DATASETS", "epinion")


class TestSweepCommands:
    INJECT_FAIL = (
        "dataset=epinion,algorithm=nq,ordering=rcm,kind=error"
    )

    def test_sweep_run_with_checkpoint_and_archive(
        self, capsys, tmp_path
    ):
        ckpt = tmp_path / "ck.jsonl"
        archive = tmp_path / "run.json"
        code = main(
            ["sweep", "run", "--checkpoint", str(ckpt),
             "--save", str(archive)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "failed=0" in output
        assert "digest" in output
        assert archive.exists()

        assert main(["sweep", "status", str(ckpt)]) == 0
        output = capsys.readouterr().out
        assert "0 failed" in output
        assert "0 pending" in output

    def test_sweep_degrades_on_injected_failure(
        self, capsys, tmp_path
    ):
        archive = tmp_path / "run.json"
        code = main(
            ["sweep", "run", "--inject", self.INJECT_FAIL,
             "--save", str(archive)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "failed=1" in output
        assert "InjectedFault" in output  # the failure table
        from repro.perf import read_archive

        failures = read_archive(archive).failures
        assert [f.key for f in failures] == [
            ("epinion", "nq", "rcm", 7)
        ]

    def test_sweep_strict_aborts(self, capsys):
        code = main(
            ["sweep", "run", "--strict", "--inject",
             self.INJECT_FAIL]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "strict" in err

    def test_speedup_renders_gaps_for_failed_cells(self, capsys):
        code = main(["speedup", "--inject", self.INJECT_FAIL])
        assert code == 0
        output = capsys.readouterr().out
        assert "(failed)" in output
        assert "relative to Gorder" in output

    def test_injected_kill_exits_137_and_resumes(
        self, capsys, tmp_path
    ):
        ckpt = tmp_path / "ck.jsonl"
        kill = (
            "dataset=epinion,algorithm=nq,ordering=indegsort,"
            "kind=kill"
        )
        code = main(
            ["sweep", "run", "--checkpoint", str(ckpt),
             "--inject", kill]
        )
        assert code == 137
        assert "sweep killed" in capsys.readouterr().err

        archive = tmp_path / "run.json"
        code = main(
            ["sweep", "run", "--checkpoint", str(ckpt), "--resume",
             "--save", str(archive)]
        )
        assert code == 0
        assert "resumed=" in capsys.readouterr().out
        assert archive.exists()

    def test_keyboard_interrupt_exits_130_with_hint(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro import perf

        def interrupt(self, *args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(perf.SweepEngine, "run", interrupt)
        code = main(
            ["sweep", "run", "--checkpoint",
             str(tmp_path / "ck.jsonl")]
        )
        assert code == 130
        err = capsys.readouterr().err
        assert "--resume" in err

    def test_bad_inject_spec_is_clean_error(self, capsys):
        code = main(["sweep", "run", "--inject", "nonsense"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestExperimentCommands:
    def test_ordering_time(self, capsys):
        assert main(["ordering-time"]) == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "gorder" in output

    def test_stall(self, capsys):
        assert main(["stall", "--dataset", "epinion"]) == 0
        output = capsys.readouterr().out
        assert "original order" in output
        assert "gorder order" in output
        assert "stall%" in output

    def test_speedup(self, capsys):
        assert main(["speedup"]) == 0
        output = capsys.readouterr().out
        assert "relative to Gorder" in output
        assert "random" in output

    def test_ranking(self, capsys):
        assert main(["ranking"]) == 0
        output = capsys.readouterr().out
        assert "Figure 6" in output
        assert "#1" in output
