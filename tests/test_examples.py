"""Smoke tests: every example script runs to completion.

The slow pipeline example is skipped unless ``REPRO_RUN_SLOW_EXAMPLES``
is set (it sweeps every ordering over a 4 000-node crawl).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "reorder_edge_list.py",
    "evolving_graph.py",
    "social_network_analysis.py",
]


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_reports_speedup():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "speedup" in result.stdout.lower()
    assert "identical" in result.stdout


def test_reorder_example_writes_outputs():
    result = run_example("reorder_edge_list.py")
    assert result.returncode == 0, result.stderr
    assert "locality score" in result.stdout


@pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_SLOW_EXAMPLES"),
    reason="slow example; set REPRO_RUN_SLOW_EXAMPLES=1 to include",
)
def test_pipeline_example_runs():
    result = run_example("web_crawl_pipeline.py")
    assert result.returncode == 0, result.stderr
    assert "pays off" in result.stdout
