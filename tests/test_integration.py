"""End-to-end integration tests: the paper's claims on small scales.

These cross-module tests run the real pipeline — generator → ordering
→ relabel → traced algorithm → cache stats — and assert the headline
causal chain: better arrangement → fewer misses → fewer cycles, with
identical results.
"""

import numpy as np
import pytest

from repro import (
    Memory,
    datasets,
    gorder_order,
    gorder_score,
    pagerank,
    relabel,
)
from repro.algorithms import REGISTRY
from repro.graph import generators
from repro.ordering import ORDERING_NAMES, compute_ordering
from repro.perf import run_cell


@pytest.fixture(scope="module")
def web():
    return generators.web_graph(
        2500, pages_per_host=100, out_degree=12, seed=17,
        name="integration-web",
    )


class TestHeadlineClaim:
    """Gorder beats Random on both the objective and the simulation."""

    def test_objective_chain(self, web):
        gorder_perm = gorder_order(web)
        random_perm = compute_ordering("random", web, seed=3)
        assert gorder_score(web, gorder_perm) > 2 * gorder_score(
            web, random_perm
        )

    @pytest.mark.parametrize("algorithm", ["nq", "pr", "bfs", "sp"])
    def test_simulation_chain(self, web, algorithm):
        params = {}
        if algorithm == "pr":
            params = {"iterations": 2}
        if algorithm == "sp":
            params = {"source": 0}
        gorder_result = run_cell(web, algorithm, "gorder",
                                 params=params)
        random_result = run_cell(web, algorithm, "random",
                                 params=params, seed=3)
        assert gorder_result.cycles < random_result.cycles
        assert (
            gorder_result.stats.l1_miss_rate
            < random_result.stats.l1_miss_rate
        )

    def test_speedup_is_stall_reduction(self, web):
        """Execute cycles barely move; stall does (Figure 1's point)."""
        gorder_result = run_cell(web, "pr", "gorder",
                                 params={"iterations": 2})
        random_result = run_cell(web, "pr", "random",
                                 params={"iterations": 2}, seed=3)
        assert gorder_result.cost.execute_cycles == pytest.approx(
            random_result.cost.execute_cycles, rel=0.05
        )
        assert (
            gorder_result.cost.stall_cycles
            < 0.8 * random_result.cost.stall_cycles
        )


class TestMissRankingExplainsRuntimeRanking:
    def test_pr_on_web(self, web):
        """Across all orderings, cycles correlate with miss rates
        (Spearman-style check: same order up to small swaps)."""
        cycles = {}
        misses = {}
        for ordering in ORDERING_NAMES:
            result = run_cell(web, "pr", ordering,
                              params={"iterations": 2}, seed=3)
            cycles[ordering] = result.cycles
            # Stall is dominated by the references that reach main
            # memory, so the runtime ranking follows Cache-mr.
            misses[ordering] = result.stats.cache_miss_rate
        by_cycles = sorted(ORDERING_NAMES, key=cycles.get)
        by_misses = sorted(ORDERING_NAMES, key=misses.get)
        # Rank displacement should be small on average.
        displacement = sum(
            abs(by_cycles.index(name) - by_misses.index(name))
            for name in ORDERING_NAMES
        ) / len(ORDERING_NAMES)
        assert displacement <= 2.0


class TestDatasetsEndToEnd:
    @pytest.mark.parametrize("name", datasets.QUICK_DATASETS)
    def test_full_pipeline_on_registry_dataset(self, name):
        graph = datasets.load(name)
        perm = compute_ordering("indegsort", graph)
        ordered = relabel(graph, perm)
        before = pagerank(graph, iterations=10)
        after = pagerank(ordered, iterations=10)
        assert np.allclose(before, after[perm])

    def test_all_algorithms_run_on_epinion_for_all_orderings(self):
        graph = datasets.load("epinion")
        for ordering in ORDERING_NAMES:
            for algorithm in REGISTRY:
                params = {}
                if algorithm == "pr":
                    params = {"iterations": 1}
                if algorithm == "sp":
                    params = {"source": 5}
                if algorithm == "diam":
                    params = {"sources": [2]}
                result = run_cell(
                    graph, algorithm, ordering, params=params
                )
                assert result.cycles > 0


class TestColdVsWarmCache:
    def test_second_run_benefits_from_warm_cache(self, web):
        """Running the same traced algorithm twice in one Memory keeps
        hot lines resident — a sanity check that the hierarchy carries
        state across runs (the Diameter benchmark relies on it)."""
        memory = Memory()
        spec = REGISTRY["nq"]
        spec.traced(web, memory)
        cold = memory.stats()
        # Second run: redeclare under different names to reuse state.
        memory2 = Memory()
        spec.traced(web, memory2)
        assert memory2.stats().l1_misses == cold.l1_misses
