"""Tests for workloads and amortisation analysis."""

import pytest

from repro.errors import (
    InvalidParameterError,
    UnknownAlgorithmError,
)
from repro.graph import generators
from repro.perf import Workload, amortization_table


@pytest.fixture(scope="module")
def graph():
    return generators.web_graph(
        600, pages_per_host=60, out_degree=8, seed=23,
        name="workload-test",
    )


@pytest.fixture(scope="module")
def pipeline():
    return Workload.of(
        "pipeline", ("pr", {"iterations": 2}), "nq",
    )


class TestWorkload:
    def test_of_normalises_steps(self):
        workload = Workload.of("w", "nq", ("pr", {"iterations": 1}))
        assert workload.steps == (
            ("nq", {}), ("pr", {"iterations": 1}),
        )

    def test_needs_steps(self):
        with pytest.raises(InvalidParameterError):
            Workload.of("empty")

    def test_unknown_algorithm_rejected_eagerly(self):
        with pytest.raises(UnknownAlgorithmError):
            Workload.of("w", "frobnicate")

    def test_cycles_positive_and_deterministic(self, graph, pipeline):
        a = pipeline.cycles(graph)
        b = pipeline.cycles(graph)
        assert a > 0
        assert a == b

    def test_cycles_additive(self, graph):
        nq_only = Workload.of("a", "nq").cycles(graph)
        double = Workload.of("b", "nq", "nq").cycles(graph)
        # Two cold runs cost exactly twice one cold run (fresh caches).
        assert double == pytest.approx(2 * nq_only)


class TestAmortization:
    def test_table_rows(self, graph, pipeline):
        rows = amortization_table(
            pipeline, graph, ["original", "random", "gorder"]
        )
        by_name = {row.ordering: row for row in rows}
        assert by_name["original"].speedup == pytest.approx(1.0)
        assert by_name["original"].break_even_runs == float("inf")
        assert by_name["gorder"].speedup > 1.05
        assert by_name["gorder"].break_even_runs < float("inf")
        assert by_name["random"].speedup < 1.0
        assert by_name["random"].break_even_runs == float("inf")

    def test_cheap_ordering_amortises_faster(self, graph, pipeline):
        rows = amortization_table(
            pipeline, graph, ["chdfs", "gorder"]
        )
        by_name = {row.ordering: row for row in rows}
        if by_name["chdfs"].speedup > 1.0:
            assert (
                by_name["chdfs"].break_even_runs
                < by_name["gorder"].break_even_runs
            )

    def test_clock_validation(self, graph, pipeline):
        with pytest.raises(InvalidParameterError):
            amortization_table(
                pipeline, graph, ["original"], clock_hz=0
            )


class TestExtensionWorkloads:
    def test_mixed_workload_with_extensions(self, graph):
        """Workloads accept extension algorithms too."""
        mixed = Workload.of(
            "analytics", "wcc", "tc", ("lp", {"iterations": 2})
        )
        assert mixed.cycles(graph) > 0

    def test_amortization_on_extension_workload(self, graph):
        mixed = Workload.of("analytics", "wcc")
        rows = amortization_table(mixed, graph, ["gorder"])
        assert rows[0].ordering == "gorder"
        assert rows[0].cycles > 0


class TestWorkloadCacheBackend:
    def test_cycles_identical_across_backends(self, graph):
        mixed = Workload.of("parity", "nq", ("pr", {"iterations": 2}))
        assert mixed.cycles(graph, cache_backend="replay") == (
            mixed.cycles(graph, cache_backend="step")
        )
