"""Tests for the fault-tolerant sweep engine.

The engine's promises — kill/resume losslessness, per-cell budgets,
graceful degradation — are exercised through the deterministic fault
injection harness (:mod:`repro.perf.faults`).
"""

import dataclasses
import json

import pytest

from repro import obs
from repro.perf import (
    PROFILES,
    CheckpointError,
    FaultPlan,
    FaultSpec,
    Profile,
    StrictCellError,
    SweepEngine,
    SweepGuards,
    SweepKill,
    archive_digest,
    checkpoint_status,
    enumerate_cells,
    profile_fingerprint,
    read_archive,
    save_results,
    speedup_matrix,
)
from repro.perf.engine import SweepCheckpoint

TINY = Profile(
    name="tiny",
    datasets=("epinion",),
    orderings=("original", "gorder", "rcm"),
    algorithms=("nq",),
)


def run_and_save(outcome, path, manifest=None):
    save_results(
        outcome.matrix(),
        path,
        metadata={"profile": outcome.profile.name},
        manifest=manifest or {"profile": outcome.profile.name},
        failures=list(outcome.failures.values()),
    )


class TestEnumerate:
    def test_deterministic_order(self):
        assert enumerate_cells(TINY) == enumerate_cells(TINY)

    def test_counts(self):
        cells = enumerate_cells(TINY)
        assert len(cells) == 3  # 1 dataset x 1 algorithm x 3 orderings

    def test_seeded_orderings_expand_per_seed(self):
        profile = dataclasses.replace(
            TINY,
            orderings=("original", "random"),
            random_seeds=(1, 2, 3),
        )
        cells = enumerate_cells(profile)
        seeds = [c.seed for c in cells if c.ordering == "random"]
        assert seeds == [1, 2, 3]
        assert sum(1 for c in cells if c.ordering == "original") == 1


class TestFingerprint:
    def test_stable(self):
        assert profile_fingerprint(TINY) == profile_fingerprint(TINY)

    def test_sensitive_to_configuration(self):
        other = dataclasses.replace(TINY, pr_iterations=99)
        assert profile_fingerprint(TINY) != profile_fingerprint(other)


class TestBasicRun:
    def test_matches_speedup_matrix(self):
        outcome = SweepEngine().run(TINY)
        assert not outcome.failures
        direct = speedup_matrix(TINY)
        engine_matrix = outcome.matrix()
        assert set(engine_matrix) == set(direct)
        for key, result in direct.items():
            assert engine_matrix[key].cycles == result.cycles

    def test_engine_kwarg_on_speedup_matrix(self):
        matrix = speedup_matrix(TINY, engine=SweepEngine())
        assert ("epinion", "nq", "gorder") in matrix


class TestGracefulDegradation:
    def test_permanent_failure_recorded_not_raised(self):
        plan = FaultPlan(
            (FaultSpec("epinion", "nq", "rcm", kind="error"),)
        )
        outcome = SweepEngine(plan=plan).run(TINY)
        assert len(outcome.results) == 2
        assert len(outcome.failures) == 1
        failure = outcome.failures[("epinion", "nq", "rcm", TINY.seed)]
        assert failure.error_type == "InjectedFault"
        assert failure.attempts == 1
        assert ("epinion", "nq", "rcm") in outcome.failed_cells()
        assert ("epinion", "nq", "rcm") not in outcome.matrix()

    def test_builtin_error_type_injected(self):
        plan = FaultPlan(
            (
                FaultSpec(
                    "epinion", "nq", "rcm",
                    kind="error", error_type="MemoryError",
                ),
            )
        )
        outcome = SweepEngine(plan=plan).run(TINY)
        failure = outcome.failures[("epinion", "nq", "rcm", TINY.seed)]
        assert failure.error_type == "MemoryError"

    def test_strict_aborts_on_first_failure(self):
        plan = FaultPlan(
            (FaultSpec("epinion", "nq", "gorder", kind="error"),)
        )
        engine = SweepEngine(
            guards=SweepGuards(strict=True), plan=plan
        )
        with pytest.raises(StrictCellError, match="gorder"):
            engine.run(TINY)

    def test_strict_failure_is_checkpointed_first(self, tmp_path):
        ckpt = tmp_path / "ck.jsonl"
        plan = FaultPlan(
            (FaultSpec("epinion", "nq", "gorder", kind="error"),)
        )
        engine = SweepEngine(
            guards=SweepGuards(strict=True), plan=plan
        )
        with pytest.raises(StrictCellError):
            engine.run(TINY, checkpoint=ckpt)
        status = checkpoint_status(ckpt)
        assert status.failed == 1

    def test_partial_matrix_keeps_surviving_seeds(self):
        profile = dataclasses.replace(
            TINY,
            orderings=("original", "random"),
            random_seeds=(1, 2),
        )
        plan = FaultPlan(
            (FaultSpec("epinion", "nq", "random", seed=1,
                       kind="error"),)
        )
        outcome = SweepEngine(plan=plan).run(profile)
        # Seed 1 failed, seed 2 succeeded: the series degrades to the
        # surviving run rather than becoming a gap.
        assert ("epinion", "nq", "random") in outcome.matrix()
        assert not outcome.failed_cells()


class TestCellErrorTelemetry:
    def test_each_failed_attempt_emits_an_event(self):
        """Regression: per-attempt errors used to be invisible in
        traces — only the final CellFailure surfaced.  Every failed
        attempt must now emit a ``sweep.cell_error`` event."""
        plan = FaultPlan(
            (FaultSpec("epinion", "nq", "rcm", kind="error"),)
        )
        obs.reset()
        obs.configure(capture=True)
        try:
            engine = SweepEngine(
                guards=SweepGuards(retries=1, backoff_seconds=0.0),
                plan=plan,
            )
            outcome = engine.run(TINY)
            events = [
                event
                for event in obs.captured()
                if event["kind"] == "event"
                and event["name"] == "sweep.cell_error"
            ]
        finally:
            obs.reset()
        assert len(outcome.failures) == 1
        # First attempt plus one retry, each visible in the trace.
        assert len(events) == 2
        for attempt, event in enumerate(events):
            assert event["level"] == "warning"
            assert event["attrs"]["dataset"] == "epinion"
            assert event["attrs"]["algorithm"] == "nq"
            assert event["attrs"]["ordering"] == "rcm"
            assert event["attrs"]["attempt"] == attempt
            assert event["attrs"]["error"] == "InjectedFault"


class TestRetries:
    def test_flaky_cell_succeeds_under_retries(self):
        plan = FaultPlan(
            (FaultSpec("epinion", "nq", "rcm", kind="error",
                       times=2),)
        )
        engine = SweepEngine(
            guards=SweepGuards(retries=2), plan=plan
        )
        outcome = engine.run(TINY)
        assert not outcome.failures
        assert len(outcome.results) == 3

    def test_insufficient_retries_still_fail(self):
        plan = FaultPlan(
            (FaultSpec("epinion", "nq", "rcm", kind="error",
                       times=2),)
        )
        engine = SweepEngine(
            guards=SweepGuards(retries=1), plan=plan
        )
        outcome = engine.run(TINY)
        failure = outcome.failures[("epinion", "nq", "rcm", TINY.seed)]
        assert failure.attempts == 2


class TestTimeout:
    def test_timed_out_cell_recorded_and_sweep_completes(self):
        plan = FaultPlan(
            (FaultSpec("epinion", "nq", "rcm", kind="delay",
                       delay_seconds=10.0),)
        )
        engine = SweepEngine(
            guards=SweepGuards(cell_timeout=0.2), plan=plan
        )
        outcome = engine.run(TINY)
        assert len(outcome.results) == 2
        failure = outcome.failures[("epinion", "nq", "rcm", TINY.seed)]
        assert failure.timed_out
        assert failure.error_type == "CellTimeout"

    def test_fast_cells_unaffected_by_timeout(self):
        engine = SweepEngine(guards=SweepGuards(cell_timeout=60.0))
        outcome = engine.run(TINY)
        assert not outcome.failures
        assert len(outcome.results) == 3


class TestCheckpointResume:
    def test_kill_then_resume_matches_uninterrupted(self, tmp_path):
        """The headline guarantee, on a (narrowed) quick profile:
        kill at an arbitrary cell, resume, get the control archive."""
        profile = dataclasses.replace(
            PROFILES["quick"],
            datasets=("epinion",),
            algorithms=("nq", "sp"),
        )
        control_ck = tmp_path / "control.jsonl"
        control = SweepEngine().run(profile, checkpoint=control_ck)
        control_path = tmp_path / "control.json"
        run_and_save(control, control_path)

        plan = FaultPlan(
            (FaultSpec("epinion", "sp", "rcm", kind="kill"),)
        )
        interrupted_ck = tmp_path / "interrupted.jsonl"
        with pytest.raises(SweepKill):
            SweepEngine(plan=plan).run(
                profile, checkpoint=interrupted_ck
            )
        mid_status = checkpoint_status(interrupted_ck)
        assert 0 < mid_status.ok < len(enumerate_cells(profile))
        assert mid_status.pending > 0

        resumed = SweepEngine().run(
            profile, checkpoint=interrupted_ck, resume=True
        )
        assert resumed.resumed_cells == mid_status.ok
        resumed_path = tmp_path / "resumed.json"
        run_and_save(resumed, resumed_path)
        assert archive_digest(control_path) == archive_digest(
            resumed_path
        )

    def test_resume_replays_failures_too(self, tmp_path):
        ckpt = tmp_path / "ck.jsonl"
        plan = FaultPlan(
            (FaultSpec("epinion", "nq", "rcm", kind="error"),)
        )
        first = SweepEngine(plan=plan).run(TINY, checkpoint=ckpt)
        assert len(first.failures) == 1
        # Resume WITHOUT the fault plan: the recorded failure is
        # replayed, not retried.
        second = SweepEngine().run(TINY, checkpoint=ckpt, resume=True)
        assert len(second.failures) == 1
        assert second.resumed_cells == 3

    def test_resume_with_missing_checkpoint_starts_fresh(
        self, tmp_path
    ):
        outcome = SweepEngine().run(
            TINY, checkpoint=tmp_path / "new.jsonl", resume=True
        )
        assert outcome.resumed_cells == 0
        assert len(outcome.results) == 3

    def test_fingerprint_mismatch_refused(self, tmp_path):
        ckpt = tmp_path / "ck.jsonl"
        SweepEngine().run(TINY, checkpoint=ckpt)
        other = dataclasses.replace(TINY, pr_iterations=99)
        with pytest.raises(CheckpointError, match="fingerprint"):
            SweepEngine().run(other, checkpoint=ckpt, resume=True)

    def test_torn_final_line_discarded(self, tmp_path):
        ckpt = tmp_path / "ck.jsonl"
        SweepEngine().run(TINY, checkpoint=ckpt)
        with open(ckpt, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "cell", "cell": {"dat')  # torn
        state = SweepCheckpoint(ckpt).load()
        assert len(state.results) == 3
        resumed = SweepEngine().run(TINY, checkpoint=ckpt, resume=True)
        assert resumed.resumed_cells == 3

    def test_corrupt_middle_line_raises(self, tmp_path):
        ckpt = tmp_path / "ck.jsonl"
        SweepEngine().run(TINY, checkpoint=ckpt)
        lines = ckpt.read_text().splitlines()
        lines[1] = lines[1][:10]  # corrupt a non-final line
        ckpt.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt at line 2"):
            SweepCheckpoint(ckpt).load()

    def test_missing_header_raises(self, tmp_path):
        ckpt = tmp_path / "ck.jsonl"
        ckpt.write_text(json.dumps({"kind": "cell"}) + "\n")
        with pytest.raises(CheckpointError, match="header"):
            SweepCheckpoint(ckpt).load()

    def test_without_resume_flag_checkpoint_is_restarted(
        self, tmp_path
    ):
        ckpt = tmp_path / "ck.jsonl"
        SweepEngine().run(TINY, checkpoint=ckpt)
        outcome = SweepEngine().run(TINY, checkpoint=ckpt)
        assert outcome.resumed_cells == 0
        assert checkpoint_status(ckpt).ok == 3


class TestCheckpointStatus:
    def test_counts(self, tmp_path):
        ckpt = tmp_path / "ck.jsonl"
        plan = FaultPlan(
            (FaultSpec("epinion", "nq", "rcm", kind="error"),)
        )
        SweepEngine(plan=plan).run(TINY, checkpoint=ckpt)
        status = checkpoint_status(ckpt)
        assert status.profile == "tiny"
        assert (status.ok, status.failed, status.pending) == (2, 1, 0)
        assert status.total_cells == 3
        assert status.failures[0].ordering == "rcm"


class TestArchiveFailures:
    def test_failures_round_trip_through_archive(self, tmp_path):
        plan = FaultPlan(
            (FaultSpec("epinion", "nq", "rcm", kind="error"),)
        )
        outcome = SweepEngine(plan=plan).run(TINY)
        path = tmp_path / "run.json"
        run_and_save(outcome, path)
        archive = read_archive(path)
        assert len(archive.failures) == 1
        assert archive.failures[0].key == (
            "epinion", "nq", "rcm", TINY.seed,
        )
        assert ("epinion", "nq", "rcm") not in archive.results


@pytest.mark.slow
class TestSubprocessIsolation:
    ONE_CELL = dataclasses.replace(TINY, orderings=("original",))

    def test_isolated_cell_matches_in_process(self):
        in_process = SweepEngine().run(self.ONE_CELL)
        isolated = SweepEngine(
            guards=SweepGuards(isolate=True)
        ).run(self.ONE_CELL)
        key = ("epinion", "nq", "original", TINY.seed)
        assert (
            isolated.results[key].cycles
            == in_process.results[key].cycles
        )

    def test_crash_in_subprocess_cannot_kill_sweep(self):
        plan = FaultPlan(
            (
                FaultSpec(
                    "epinion", "nq", "original",
                    kind="error", error_type="MemoryError",
                    message="simulated OOM",
                ),
            )
        )
        outcome = SweepEngine(
            guards=SweepGuards(isolate=True), plan=plan
        ).run(self.ONE_CELL)
        failure = outcome.failures[
            ("epinion", "nq", "original", TINY.seed)
        ]
        assert failure.error_type == "MemoryError"
        assert "simulated OOM" in failure.message
