"""Unit tests for the plain-text report rendering."""

from repro.cache import CacheStats, RunCost
from repro.perf import (
    RunResult,
    render_bar,
    render_cache_stats,
    render_rank_histogram,
    render_speedup_series,
    render_stall_split,
    render_table,
)


def make_result(cycles=1000.0, stall=400.0):
    return RunResult(
        dataset="d",
        algorithm="a",
        ordering="o",
        cost=RunCost(execute_cycles=cycles - stall, stall_cycles=stall),
        stats=CacheStats(100, 20, 20, 10, 10, 5),
        ordering_seconds=0.1,
        simulation_seconds=0.2,
    )


class TestTable:
    def test_headers_and_rows(self):
        text = render_table(["a", "b"], [[1, 2], [30, 40]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "30" in lines[3]

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.startswith("My Table")

    def test_empty_rows(self):
        text = render_table(["col"], [])
        assert "col" in text

    def test_float_formatting(self):
        text = render_table(["v"], [[3.14159]])
        assert "3.14" in text


class TestBar:
    def test_full_bar(self):
        assert render_bar(2.0, 2.0, width=10) == "#" * 10

    def test_half_bar(self):
        assert render_bar(1.0, 2.0, width=10) == "#" * 5

    def test_zero_scale(self):
        assert render_bar(1.0, 0.0) == ""

    def test_clamped(self):
        assert render_bar(5.0, 2.0, width=10) == "#" * 10


class TestSpeedupSeries:
    def test_contains_orderings_and_values(self):
        text = render_speedup_series(
            "PR on sdarc", {"original": 1.5, "gorder": 1.0}
        )
        assert "PR on sdarc" in text
        assert "original" in text
        assert "1.50" in text

    def test_clipping_marker(self):
        text = render_speedup_series("t", {"random": 3.7}, limit=2.0)
        assert "+" in text


class TestStallSplit:
    def test_renders_percentages(self):
        text = render_stall_split("F1", {"nq": make_result()})
        assert "nq" in text
        assert "40.0%" in text  # stall share


class TestCacheStats:
    def test_columns(self):
        text = render_cache_stats("T3", {"gorder": make_result()})
        assert "L1-mr" in text
        assert "20.0 %" in text  # 20/100
        assert "5.0 %" in text  # cache-mr 5/100


class TestRankHistogram:
    def test_sorted_by_mean_rank(self):
        histogram = {
            "worse": [0, 2],
            "better": [2, 0],
        }
        text = render_rank_histogram("F6", histogram)
        lines = text.splitlines()
        assert lines[3].split()[0] == "better"
        assert lines[4].split()[0] == "worse"


class TestHeatmap:
    def test_landscape(self):
        from repro.perf import render_heatmap

        values = {
            (1.0, 0.0): 100.0,
            (1.0, 1.0): 500.0,
            (2.0, 0.0): 100.0,
            (2.0, 1.0): 300.0,
        }
        text = render_heatmap("F3", values, "steps", "k")
        assert "F3" in text
        assert "@" in text  # the hottest cell
        assert "scale" in text

    def test_flat_values(self):
        from repro.perf import render_heatmap

        values = {(0.0, 0.0): 7.0, (0.0, 1.0): 7.0}
        text = render_heatmap("flat", values)
        assert "flat" in text
