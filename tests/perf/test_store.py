"""Tests for the JSON result store."""

import json

import pytest

from repro.cache import CacheStats, RunCost
from repro.perf import RunResult
from repro.perf.store import (
    CellFailure,
    ResultStoreError,
    archive_digest,
    compare_runs,
    failure_from_dict,
    failure_to_dict,
    load_results,
    read_archive,
    result_from_dict,
    result_to_dict,
    save_results,
)


def make_result(dataset="d", algorithm="a", ordering="o", cycles=100.0):
    return RunResult(
        dataset=dataset,
        algorithm=algorithm,
        ordering=ordering,
        cost=RunCost(execute_cycles=cycles * 0.3,
                     stall_cycles=cycles * 0.7),
        stats=CacheStats(1000, 100, 100, 50, 50, 10),
        ordering_seconds=0.5,
        simulation_seconds=1.5,
    )


class TestRoundTrip:
    def test_dict_roundtrip(self):
        result = make_result()
        assert result_from_dict(result_to_dict(result)) == result

    def test_file_roundtrip(self, tmp_path):
        results = {
            ("d", "a", "o"): make_result(),
            ("d", "a", "p"): make_result(ordering="p", cycles=200.0),
        }
        path = tmp_path / "run.json"
        save_results(results, path, metadata={"profile": "quick"})
        loaded = load_results(path)
        assert loaded == results

    def test_list_input(self, tmp_path):
        path = tmp_path / "run.json"
        save_results([make_result()], path)
        assert ("d", "a", "o") in load_results(path)

    def test_metadata_preserved_in_file(self, tmp_path):
        path = tmp_path / "run.json"
        save_results([make_result()], path, metadata={"note": "x"})
        assert json.loads(path.read_text())["metadata"] == {"note": "x"}


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ResultStoreError, match="cannot read"):
            load_results(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ResultStoreError, match="cannot read"):
            load_results(path)

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": 99, "results": []}))
        with pytest.raises(ResultStoreError, match="schema"):
            load_results(path)

    def test_malformed_record(self):
        with pytest.raises(ResultStoreError, match="malformed"):
            result_from_dict({"dataset": "d"})


def make_failure(**overrides):
    fields = dict(
        dataset="d",
        algorithm="a",
        ordering="x",
        seed=7,
        error_type="MemoryError",
        message="boom",
        traceback_tail="...",
        attempts=3,
        elapsed_seconds=1.25,
        timed_out=False,
    )
    fields.update(overrides)
    return CellFailure(**fields)


class TestSchemaV3:
    def test_failures_round_trip(self, tmp_path):
        path = tmp_path / "run.json"
        failure = make_failure()
        save_results([make_result()], path, failures=[failure])
        archive = read_archive(path)
        assert archive.schema == 3
        assert archive.failures == [failure]
        assert failure.key == ("d", "a", "x", 7)

    def test_failure_dict_round_trip(self):
        failure = make_failure(timed_out=True)
        payload = failure_to_dict(failure)
        assert payload["status"] == "failed"
        assert failure_from_dict(payload) == failure

    def test_malformed_failure_record(self):
        with pytest.raises(ResultStoreError, match="malformed"):
            failure_from_dict({"status": "failed", "dataset": "d"})

    def test_result_records_carry_ok_status(self, tmp_path):
        path = tmp_path / "run.json"
        save_results([make_result()], path)
        payload = json.loads(path.read_text())
        assert payload["results"][0]["status"] == "ok"

    def test_v2_archive_loads_without_failures(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(
            json.dumps(
                {
                    "schema": 2,
                    "manifest": {"profile": "quick"},
                    "metadata": {},
                    "results": [
                        {
                            k: v
                            for k, v in result_to_dict(
                                make_result()
                            ).items()
                            if k != "status"
                        }
                    ],
                }
            )
        )
        archive = read_archive(path)
        assert archive.schema == 2
        assert archive.failures == []
        assert ("d", "a", "o") in archive.results

    def test_describe_names_the_cell(self):
        text = make_failure(timed_out=True).describe()
        assert "timeout" in text
        assert "(d, a, x, seed=7)" in text


class TestAtomicWrites:
    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "run.json"
        save_results([make_result()], path)
        leftovers = [
            p.name for p in tmp_path.iterdir() if p.name != "run.json"
        ]
        assert leftovers == []

    def test_overwrite_is_complete(self, tmp_path):
        path = tmp_path / "run.json"
        save_results([make_result(cycles=100.0)], path)
        save_results([make_result(cycles=200.0)], path)
        loaded = load_results(path)
        assert loaded[("d", "a", "o")].cycles == pytest.approx(200.0)

    def test_non_object_archive_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ResultStoreError, match="not a result"):
            read_archive(path)


class TestArchiveDigest:
    def test_ignores_wall_clock_fields(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_results(
            [make_result()], a,
            manifest={"profile": "q", "created": "now",
                      "created_unix": 1.0},
            failures=[make_failure(elapsed_seconds=1.0)],
        )
        slower = RunResult(
            dataset="d", algorithm="a", ordering="o",
            cost=make_result().cost, stats=make_result().stats,
            ordering_seconds=99.0, simulation_seconds=99.0,
        )
        save_results(
            [slower], b,
            manifest={"profile": "q", "created": "later",
                      "created_unix": 2.0},
            failures=[make_failure(elapsed_seconds=42.0)],
        )
        assert archive_digest(a) == archive_digest(b)

    def test_sensitive_to_results(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        manifest = {"profile": "q"}
        save_results([make_result(cycles=100.0)], a,
                     manifest=manifest)
        save_results([make_result(cycles=200.0)], b,
                     manifest=manifest)
        assert archive_digest(a) != archive_digest(b)

    def test_unreadable_path_raises(self, tmp_path):
        with pytest.raises(ResultStoreError, match="cannot read"):
            archive_digest(tmp_path / "nope.json")


class TestCompare:
    def test_ratios(self):
        before = {("d", "a", "o"): make_result(cycles=100.0)}
        after = {("d", "a", "o"): make_result(cycles=150.0)}
        ratios = compare_runs(before, after)
        assert ratios[("d", "a", "o")] == pytest.approx(1.5)

    def test_missing_cells_skipped(self):
        before = {("d", "a", "o"): make_result()}
        assert compare_runs(before, {}) == {}

    def test_real_matrix_roundtrip(self, tmp_path):
        """End to end over an actual tiny experiment matrix."""
        from repro.perf import Profile, speedup_matrix

        profile = Profile(
            name="tiny",
            datasets=("epinion",),
            orderings=("original", "gorder"),
            algorithms=("nq",),
        )
        matrix = speedup_matrix(profile)
        path = tmp_path / "matrix.json"
        save_results(matrix, path)
        loaded = load_results(path)
        ratios = compare_runs(matrix, loaded)
        assert all(r == pytest.approx(1.0) for r in ratios.values())
