"""Tests for the JSON result store."""

import json

import pytest

from repro.cache import CacheStats, RunCost
from repro.perf import RunResult
from repro.perf.store import (
    ResultStoreError,
    compare_runs,
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)


def make_result(dataset="d", algorithm="a", ordering="o", cycles=100.0):
    return RunResult(
        dataset=dataset,
        algorithm=algorithm,
        ordering=ordering,
        cost=RunCost(execute_cycles=cycles * 0.3,
                     stall_cycles=cycles * 0.7),
        stats=CacheStats(1000, 100, 100, 50, 50, 10),
        ordering_seconds=0.5,
        simulation_seconds=1.5,
    )


class TestRoundTrip:
    def test_dict_roundtrip(self):
        result = make_result()
        assert result_from_dict(result_to_dict(result)) == result

    def test_file_roundtrip(self, tmp_path):
        results = {
            ("d", "a", "o"): make_result(),
            ("d", "a", "p"): make_result(ordering="p", cycles=200.0),
        }
        path = tmp_path / "run.json"
        save_results(results, path, metadata={"profile": "quick"})
        loaded = load_results(path)
        assert loaded == results

    def test_list_input(self, tmp_path):
        path = tmp_path / "run.json"
        save_results([make_result()], path)
        assert ("d", "a", "o") in load_results(path)

    def test_metadata_preserved_in_file(self, tmp_path):
        path = tmp_path / "run.json"
        save_results([make_result()], path, metadata={"note": "x"})
        assert json.loads(path.read_text())["metadata"] == {"note": "x"}


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ResultStoreError, match="cannot read"):
            load_results(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ResultStoreError, match="cannot read"):
            load_results(path)

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": 99, "results": []}))
        with pytest.raises(ResultStoreError, match="schema"):
            load_results(path)

    def test_malformed_record(self):
        with pytest.raises(ResultStoreError, match="malformed"):
            result_from_dict({"dataset": "d"})


class TestCompare:
    def test_ratios(self):
        before = {("d", "a", "o"): make_result(cycles=100.0)}
        after = {("d", "a", "o"): make_result(cycles=150.0)}
        ratios = compare_runs(before, after)
        assert ratios[("d", "a", "o")] == pytest.approx(1.5)

    def test_missing_cells_skipped(self):
        before = {("d", "a", "o"): make_result()}
        assert compare_runs(before, {}) == {}

    def test_real_matrix_roundtrip(self, tmp_path):
        """End to end over an actual tiny experiment matrix."""
        from repro.perf import Profile, speedup_matrix

        profile = Profile(
            name="tiny",
            datasets=("epinion",),
            orderings=("original", "gorder"),
            algorithms=("nq",),
        )
        matrix = speedup_matrix(profile)
        path = tmp_path / "matrix.json"
        save_results(matrix, path)
        loaded = load_results(path)
        ratios = compare_runs(matrix, loaded)
        assert all(r == pytest.approx(1.0) for r in ratios.values())
