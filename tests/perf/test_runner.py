"""Unit tests for the experiment runner."""

import threading

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph import generators
from repro.perf import OrderingCache, run_cell, time_ordering


@pytest.fixture(scope="module")
def graph():
    return generators.social_graph(
        120, edges_per_node=5, seed=55, name="runner-test"
    )


class TestRunCell:
    def test_result_fields(self, graph):
        result = run_cell(graph, "nq", "gorder")
        assert result.dataset == "runner-test"
        assert result.algorithm == "nq"
        assert result.ordering == "gorder"
        assert result.cycles > 0
        assert result.stats.l1_refs > 0
        assert result.simulation_seconds >= 0

    def test_deterministic(self, graph):
        cache = OrderingCache()
        a = run_cell(graph, "pr", "rcm", params={"iterations": 2},
                     cache=cache)
        b = run_cell(graph, "pr", "rcm", params={"iterations": 2},
                     cache=cache)
        assert a.cycles == b.cycles
        assert a.stats == b.stats

    def test_scalar_source_mapped_through_permutation(self, graph):
        """SP from logical source s must do the same logical work for
        every ordering - the distance profile (sorted) is identical."""
        a = run_cell(graph, "sp", "original", params={"source": 3})
        b = run_cell(graph, "sp", "random", params={"source": 3},
                     seed=9)
        assert a.stats.l1_refs == pytest.approx(
            b.stats.l1_refs, rel=0.1
        )

    def test_sequence_sources_mapped(self, graph):
        result = run_cell(
            graph, "diam", "gorder", params={"sources": [0, 5]}
        )
        assert result.cycles > 0

    def test_dataset_name_override(self, graph):
        result = run_cell(graph, "nq", "original",
                          dataset_name="override")
        assert result.dataset == "override"

    def test_ordering_seconds_memoised(self, graph):
        cache = OrderingCache()
        first = run_cell(graph, "nq", "gorder", cache=cache)
        second = run_cell(graph, "bfs", "gorder", cache=cache)
        # Same cached ordering time reported for both runs.
        assert second.ordering_seconds == first.ordering_seconds


class TestOrderingCache:
    def test_memoises_permutation(self, graph):
        cache = OrderingCache()
        perm_a, _ = cache.permutation(graph, "gorder", 0)
        perm_b, _ = cache.permutation(graph, "gorder", 0)
        assert perm_a is perm_b

    def test_distinct_seeds_distinct_entries(self, graph):
        cache = OrderingCache()
        perm_a, _ = cache.permutation(graph, "random", 1)
        perm_b, _ = cache.permutation(graph, "random", 2)
        assert not (perm_a is perm_b)

    def test_relabeled_graph_memoised(self, graph):
        cache = OrderingCache()
        graph_a, _, _ = cache.relabeled(graph, "rcm", 0)
        graph_b, _, _ = cache.relabeled(graph, "rcm", 0)
        assert graph_a is graph_b

    def test_clear(self, graph):
        cache = OrderingCache()
        perm_a, _ = cache.permutation(graph, "rcm", 0)
        cache.clear()
        perm_b, _ = cache.permutation(graph, "rcm", 0)
        assert perm_a is not perm_b

    def test_params_are_part_of_the_key(self, graph):
        """Runs with different ordering knobs never share an entry."""
        cache = OrderingCache()
        default, _ = cache.permutation(graph, "gorder", 0)
        loop, _ = cache.permutation(
            graph, "gorder", 0, params={"backend": "loop"}
        )
        assert default is not loop
        assert len(cache) == 2
        again, _ = cache.permutation(
            graph, "gorder", 0, params={"backend": "loop"}
        )
        assert again is loop

    def test_params_key_order_insensitive(self, graph):
        cache = OrderingCache()
        a, _ = cache.permutation(
            graph, "gorder", 0,
            params={"window": 3, "backend": "loop"},
        )
        b, _ = cache.permutation(
            graph, "gorder", 0,
            params={"backend": "loop", "window": 3},
        )
        assert a is b
        assert len(cache) == 1

    def test_empty_params_same_as_none(self, graph):
        cache = OrderingCache()
        a, _ = cache.permutation(graph, "gorder", 0)
        b, _ = cache.permutation(graph, "gorder", 0, params={})
        assert a is b


class TestCacheBounds:
    def test_entry_cap_evicts_least_recently_used(self, graph):
        cache = OrderingCache(max_entries=2)
        perm_a, _ = cache.permutation(graph, "original", 0)
        cache.permutation(graph, "indegsort", 0)
        cache.permutation(graph, "rcm", 0)  # evicts "original"
        assert len(cache) == 2
        perm_a2, _ = cache.permutation(graph, "original", 0)
        assert perm_a2 is not perm_a  # recomputed, still correct
        assert (perm_a2 == perm_a).all()

    def test_lru_order_refreshed_on_hit(self, graph):
        cache = OrderingCache(max_entries=2)
        cache.permutation(graph, "original", 0)
        cache.permutation(graph, "indegsort", 0)
        # Touch "original" so "indegsort" is the LRU victim.
        first, _ = cache.permutation(graph, "original", 0)
        cache.permutation(graph, "rcm", 0)
        again, _ = cache.permutation(graph, "original", 0)
        assert again is first

    def test_byte_cap(self, graph):
        cache = OrderingCache(max_entries=None, max_bytes=1)
        cache.relabeled(graph, "original", 0)
        cache.relabeled(graph, "indegsort", 0)
        # Over the byte cap, only the newest entry is retained.
        assert len(cache) == 1
        assert cache.nbytes() > 0

    def test_newest_entry_always_survives(self, graph):
        cache = OrderingCache(max_entries=1)
        perm_a, _ = cache.permutation(graph, "original", 0)
        perm_b, _ = cache.permutation(graph, "original", 0)
        assert perm_b is perm_a

    def test_eviction_counter(self, graph):
        from repro import obs

        obs.reset()
        obs.TELEMETRY.enable()
        try:
            cache = OrderingCache(max_entries=1)
            cache.permutation(graph, "original", 0)
            cache.permutation(graph, "indegsort", 0)
            counters = obs.counters()
            assert counters["runner.ordering_cache_evictions"] == 1
        finally:
            obs.reset()

    def test_eviction_releases_pin(self, graph):
        cache = OrderingCache(max_entries=1)
        cache.permutation(graph, "original", 0)
        cache.permutation(graph, "indegsort", 0)
        # One entry left -> exactly one pin on the keyed graph.
        assert list(cache._pinned) == [id(graph)]
        assert cache._pin_counts[id(graph)] == 1

    def test_invalid_caps_rejected(self):
        with pytest.raises(InvalidParameterError):
            OrderingCache(max_entries=0)
        with pytest.raises(InvalidParameterError):
            OrderingCache(max_bytes=0)

    def test_global_cache_is_bounded(self):
        from repro.perf import GLOBAL_ORDERING_CACHE

        assert GLOBAL_ORDERING_CACHE.max_entries is not None


class TestCacheContention:
    """Regression tests for thread-safety under eviction pressure.

    Before the lock, concurrent workers could corrupt the LRU dict
    mid-eviction (RuntimeError from a mutated OrderedDict) or strand
    pins after a double-evict.  These tests hammer a tiny cache from
    many threads; they must never raise and must leave the pin
    bookkeeping consistent with the surviving entries.
    """

    ORDERINGS = ("original", "indegsort", "hubsort", "random")

    def test_eviction_under_contention(self, graph):
        cache = OrderingCache(max_entries=2)
        errors: list[BaseException] = []
        barrier = threading.Barrier(8)

        def worker(index: int) -> None:
            try:
                barrier.wait(timeout=10)
                for step in range(30):
                    ordering = self.ORDERINGS[
                        (index + step) % len(self.ORDERINGS)
                    ]
                    perm, seconds = cache.permutation(
                        graph, ordering, seed=step % 2
                    )
                    assert sorted(perm) == list(
                        range(graph.num_nodes)
                    )
                    assert seconds >= 0
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        assert len(cache) <= 2
        # Pin accounting matches the surviving entries exactly.
        assert sum(cache._pin_counts.values()) == len(cache)

    def test_concurrent_same_key_converges(self, graph):
        """Racing misses on one key may compute twice but must agree
        and leave exactly one entry (first insert wins)."""
        cache = OrderingCache(max_entries=8)
        barrier = threading.Barrier(6)
        results = []

        def worker() -> None:
            barrier.wait(timeout=10)
            results.append(
                cache.permutation(graph, "indegsort", 0)[0]
            )

        threads = [
            threading.Thread(target=worker) for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(results) == 6
        first = results[0]
        for perm in results[1:]:
            assert (perm == first).all()
        assert len(cache) == 1

    def test_insert_preseeds_the_memo(self, graph):
        cache = OrderingCache(max_entries=4)
        perm = np.arange(graph.num_nodes, dtype=np.int64)
        cache.insert(graph, "original", 0, perm, 0.125)
        got, seconds = cache.permutation(graph, "original", 0)
        assert got is perm
        assert seconds == 0.125

    def test_insert_never_clobbers(self, graph):
        cache = OrderingCache(max_entries=4)
        first, _ = cache.permutation(graph, "original", 0)
        cache.insert(
            graph,
            "original",
            0,
            np.zeros(graph.num_nodes, dtype=np.int64),
            9.0,
        )
        again, _ = cache.permutation(graph, "original", 0)
        assert again is first


class TestTimeOrdering:
    def test_positive(self, graph):
        assert time_ordering(graph, "indegsort") > 0

    def test_repeats_take_minimum(self, graph):
        assert time_ordering(graph, "indegsort", repeats=2) > 0


class TestCachePinning:
    def test_cached_graph_ids_cannot_be_recycled(self):
        """The cache pins keyed graphs so a freed graph's id cannot
        alias a new one and return a stale permutation."""
        import gc

        from repro.graph import generators

        cache = OrderingCache()
        results = {}
        for round_number in range(8):
            # Without pinning, these short-lived graphs frequently
            # reuse each other's ids.
            transient = generators.erdos_renyi(
                60, 200, seed=round_number, name=f"g{round_number}"
            )
            perm, _ = cache.permutation(transient, "indegsort", 0)
            results[round_number] = (transient, perm.copy())
            del transient
            gc.collect()
        for round_number, (kept, perm) in results.items():
            from repro.ordering import indegsort_order

            expected = indegsort_order(kept)
            assert (perm == expected).all()


class TestRunnerConfiguration:
    def test_custom_hierarchy(self, graph):
        from repro.cache import CacheHierarchy, CacheLevel

        tiny = CacheHierarchy(
            [CacheLevel(512, 64, 8, "L1")], name="tiny"
        )
        big = CacheHierarchy(
            [CacheLevel(1 << 20, 64, 8, "L1")], name="big"
        )
        slow = run_cell(graph, "nq", "original", hierarchy=tiny)
        fast = run_cell(graph, "nq", "original", hierarchy=big)
        # A bigger cache can only reduce simulated cycles.
        assert fast.cycles <= slow.cycles

    def test_custom_cost_model(self, graph):
        from repro.cache import CostModel

        free_memory = CostModel(memory_stall=0.0, l2_stall=0.0,
                                l3_stall=0.0)
        result = run_cell(
            graph, "nq", "original", cost_model=free_memory
        )
        assert result.cost.stall_cycles == 0.0

    def test_stats_refs_positive(self, graph):
        result = run_cell(graph, "bfs", "rcm")
        assert result.stats.l1_refs > graph.num_nodes


class TestCacheBackendPlumbing:
    """run_cell must produce one answer regardless of backend."""

    def test_replay_matches_step(self, graph):
        step = run_cell(graph, "pr", "gorder",
                        params={"iterations": 2},
                        cache_backend="step")
        replay = run_cell(graph, "pr", "gorder",
                          params={"iterations": 2},
                          cache_backend="replay")
        assert replay.cycles == step.cycles
        assert replay.stats == step.stats

    def test_invalid_backend_rejected(self, graph):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="backend"):
            run_cell(graph, "nq", "original",
                     cache_backend="speculative")
