"""The Gorder benchmark-regression harness (quick-sized)."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.perf import bench
from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    BenchRegressionError,
    GorderBenchConfig,
    quick_config,
    render_gorder_bench,
    run_gorder_bench,
    write_bench_json,
)


@pytest.fixture(scope="module")
def payload():
    """One shared quick benchmark run (module-scoped: it costs time)."""
    return run_gorder_bench(quick_config(nodes=400, workers=2))


class TestConfig:
    def test_defaults_meet_acceptance_floor(self):
        config = GorderBenchConfig()
        assert config.nodes >= 50_000
        assert config.nodes * config.edges_per_node >= 500_000

    def test_quick_config_is_small(self):
        config = quick_config()
        assert config.quick
        assert config.nodes < 10_000

    def test_quick_config_overrides(self):
        config = quick_config(nodes=123, window=2)
        assert config.nodes == 123
        assert config.window == 2
        assert config.quick


class TestPayloadSchema:
    def test_top_level_fields(self, payload):
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["bench"] == "gorder_kernel"
        assert payload["quick"] is True
        assert payload["identical"] is True
        assert payload["speedup_batched_vs_loop"] > 0
        assert "manifest" in payload

    def test_graph_section(self, payload):
        graph = payload["graph"]
        assert graph["generator"] == "social_graph"
        assert graph["nodes"] == 400
        assert graph["edges"] > 0

    def test_kernel_sections(self, payload):
        loop = payload["kernels"]["loop"]
        batched = payload["kernels"]["batched"]
        assert loop["seconds"] > 0 and batched["seconds"] > 0
        # Same greedy, so identical event streams.
        assert loop["heap_pops"] == batched["heap_pops"]
        assert loop["unit_updates"] == batched["unit_updates"]
        assert loop["unit_updates"] > 0
        assert 0 < batched["batched_moves"] <= batched["unit_updates"]

    def test_partitioned_section(self, payload):
        partitioned = payload["partitioned"]
        assert partitioned["identical"] is True
        assert partitioned["workers"] == 2
        assert partitioned["workers_1_seconds"] > 0
        assert partitioned["speedup"] > 0

    def test_json_round_trip(self, payload, tmp_path):
        path = write_bench_json(payload, tmp_path / "bench.json")
        assert json.loads(path.read_text()) == payload

    def test_render_mentions_key_numbers(self, payload):
        text = render_gorder_bench(payload)
        assert "speedup" in text
        assert "identical   : yes" in text
        assert "partitioned" in text


class TestSkipPartitioned:
    def test_partitioned_null_when_skipped(self):
        payload = run_gorder_bench(
            quick_config(nodes=300, include_partitioned=False)
        )
        assert payload["partitioned"] is None
        assert "partitioned" not in render_gorder_bench(payload)


class TestRegressionGuard:
    def test_divergence_raises(self, monkeypatch):
        """A wrong answer must never be blessed with a timing."""

        def fake_sequence(graph, window=5, backend="batched"):
            n = graph.num_nodes
            order = np.arange(n, dtype=np.int64)
            return order if backend == "loop" else order[::-1].copy()

        monkeypatch.setattr(bench, "gorder_sequence", fake_sequence)
        with pytest.raises(BenchRegressionError):
            run_gorder_bench(
                quick_config(nodes=50, include_partitioned=False)
            )


class TestBenchCLI:
    def test_quick_bench_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_gorder.json"
        code = main([
            "bench", "--quick", "--nodes", "300",
            "--skip-partitioned", "--out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["identical"] is True
        assert payload["quick"] is True
        assert "speedup" in capsys.readouterr().out
