"""The Gorder benchmark-regression harness (quick-sized)."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.perf import bench
from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    BenchRegressionError,
    GorderBenchConfig,
    quick_config,
    render_gorder_bench,
    run_gorder_bench,
    write_bench_json,
)


@pytest.fixture(scope="module")
def payload():
    """One shared quick benchmark run (module-scoped: it costs time)."""
    return run_gorder_bench(quick_config(nodes=400, workers=2))


class TestConfig:
    def test_defaults_meet_acceptance_floor(self):
        config = GorderBenchConfig()
        assert config.nodes >= 50_000
        assert config.nodes * config.edges_per_node >= 500_000

    def test_quick_config_is_small(self):
        config = quick_config()
        assert config.quick
        assert config.nodes < 10_000

    def test_quick_config_overrides(self):
        config = quick_config(nodes=123, window=2)
        assert config.nodes == 123
        assert config.window == 2
        assert config.quick


class TestPayloadSchema:
    def test_top_level_fields(self, payload):
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["bench"] == "gorder_kernel"
        assert payload["quick"] is True
        assert payload["identical"] is True
        assert payload["speedup_batched_vs_loop"] > 0
        assert "manifest" in payload

    def test_graph_section(self, payload):
        graph = payload["graph"]
        assert graph["generator"] == "social_graph"
        assert graph["nodes"] == 400
        assert graph["edges"] > 0

    def test_kernel_sections(self, payload):
        loop = payload["kernels"]["loop"]
        batched = payload["kernels"]["batched"]
        assert loop["seconds"] > 0 and batched["seconds"] > 0
        # Same greedy, so identical event streams.
        assert loop["heap_pops"] == batched["heap_pops"]
        assert loop["unit_updates"] == batched["unit_updates"]
        assert loop["unit_updates"] > 0
        assert 0 < batched["batched_moves"] <= batched["unit_updates"]

    def test_partitioned_section(self, payload):
        partitioned = payload["partitioned"]
        assert partitioned["identical"] is True
        assert partitioned["workers"] == 2
        assert partitioned["workers_1_seconds"] > 0
        assert partitioned["speedup"] > 0

    def test_json_round_trip(self, payload, tmp_path):
        path = write_bench_json(payload, tmp_path / "bench.json")
        assert json.loads(path.read_text()) == payload

    def test_render_mentions_key_numbers(self, payload):
        text = render_gorder_bench(payload)
        assert "speedup" in text
        assert "identical   : yes" in text
        assert "partitioned" in text


class TestSkipPartitioned:
    def test_partitioned_null_when_skipped(self):
        payload = run_gorder_bench(
            quick_config(nodes=300, include_partitioned=False)
        )
        assert payload["partitioned"] is None
        assert "partitioned" not in render_gorder_bench(payload)


class TestRegressionGuard:
    def test_divergence_raises(self, monkeypatch):
        """A wrong answer must never be blessed with a timing."""

        def fake_sequence(graph, window=5, backend="batched"):
            n = graph.num_nodes
            order = np.arange(n, dtype=np.int64)
            return order if backend == "loop" else order[::-1].copy()

        monkeypatch.setattr(bench, "gorder_sequence", fake_sequence)
        with pytest.raises(BenchRegressionError):
            run_gorder_bench(
                quick_config(nodes=50, include_partitioned=False)
            )


class TestBenchCLI:
    def test_quick_bench_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_gorder.json"
        code = main([
            "bench", "--quick", "--nodes", "300",
            "--skip-partitioned", "--out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["identical"] is True
        assert payload["quick"] is True
        assert "speedup" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Cache trace-replay suite
# ----------------------------------------------------------------------
from repro.perf.bench import (  # noqa: E402
    CacheBenchConfig,
    quick_cache_config,
    render_cache_bench,
    run_cache_bench,
)


@pytest.fixture(scope="module")
def cache_payload():
    """One shared quick cache benchmark run (module-scoped)."""
    return run_cache_bench(quick_cache_config())


class TestCacheConfig:
    def test_defaults_are_the_acceptance_workload(self):
        config = CacheBenchConfig()
        assert config.dataset == "sdarc"
        assert config.iterations == 5
        assert config.hierarchy == "paper"

    def test_quick_config_is_small(self):
        config = quick_cache_config()
        assert config.quick
        assert config.dataset != "sdarc"

    def test_quick_config_overrides(self):
        config = quick_cache_config(iterations=1, repeats=2)
        assert config.iterations == 1
        assert config.repeats == 2
        assert config.quick

    def test_unknown_hierarchy_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="hierarchy"):
            run_cache_bench(quick_cache_config(hierarchy="l4"))


class TestCachePayloadSchema:
    def test_top_level_fields(self, cache_payload):
        assert (
            cache_payload["schema_version"] == BENCH_SCHEMA_VERSION
        )
        assert cache_payload["bench"] == "cache_replay"
        assert cache_payload["quick"] is True
        assert cache_payload["identical"] is True

    def test_backend_sections(self, cache_payload):
        backends = cache_payload["backends"]
        for name in ("step", "replay"):
            assert backends[name]["seconds"] >= 0
            assert backends[name]["accesses_per_second"] > 0
        assert cache_payload["speedup_replay_vs_step"] > 0

    def test_workload_section(self, cache_payload):
        workload = cache_payload["workload"]
        assert workload["dataset"] == "epinion"
        assert workload["accesses"] > 0
        assert workload["demand_accesses"] <= workload["accesses"]

    def test_end_to_end_section(self, cache_payload):
        end_to_end = cache_payload["end_to_end"]
        assert end_to_end["identical"] is True
        assert end_to_end["speedup"] > 0

    def test_level_counts_sum_to_demand_plus_extra(self, cache_payload):
        workload = cache_payload["workload"]
        assert sum(cache_payload["level_counts"]) == (
            workload["total_refs"]
        )

    def test_json_round_trip(self, cache_payload, tmp_path):
        path = write_bench_json(
            cache_payload, tmp_path / "BENCH_cache.json"
        )
        assert json.loads(path.read_text()) == cache_payload

    def test_render_mentions_key_numbers(self, cache_payload):
        text = render_cache_bench(cache_payload)
        assert "replay vs step" in text
        assert "identical   : yes" in text


class TestCacheRegressionGuard:
    def test_divergence_raises(self, monkeypatch):
        """A wrong answer must never be blessed with a timing."""
        from repro.cache.hierarchy import CacheHierarchy

        real_replay = CacheHierarchy.replay

        def corrupted(self, lines):
            serving = real_replay(self, lines)
            if serving.shape[0]:
                serving[0] = serving[0] + 1
            return serving

        monkeypatch.setattr(CacheHierarchy, "replay", corrupted)
        with pytest.raises(BenchRegressionError):
            run_cache_bench(quick_cache_config(iterations=1))


class TestCacheBenchCLI:
    def test_quick_cache_bench_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_cache.json"
        code = main(
            ["bench", "--suite", "cache", "--quick", "--out", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["bench"] == "cache_replay"
        assert payload["identical"] is True
        assert "replay vs step" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Algorithm-runtime suite
# ----------------------------------------------------------------------
import numpy as np  # noqa: E402

from repro.perf.bench import (  # noqa: E402
    RUNTIME_ALGORITHMS,
    AlgosBenchConfig,
    quick_algos_config,
    render_algos_bench,
    run_algos_bench,
)


@pytest.fixture(scope="module")
def algos_payload():
    """One shared quick algos benchmark run (module-scoped)."""
    return run_algos_bench(quick_algos_config())


class TestAlgosConfig:
    def test_defaults_are_the_acceptance_workload(self):
        config = AlgosBenchConfig()
        assert config.dataset == "sdarc"
        assert config.hierarchy == "scaled"
        assert config.iterations == 5
        assert not config.quick

    def test_quick_config_is_small(self):
        config = quick_algos_config()
        assert config.quick
        assert config.dataset != "sdarc"

    def test_quick_config_overrides(self):
        config = quick_algos_config(iterations=1, repeats=2)
        assert config.iterations == 1
        assert config.repeats == 2
        assert config.quick

    def test_unknown_hierarchy_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="hierarchy"):
            run_algos_bench(quick_algos_config(hierarchy="l4"))


class TestAlgosPayloadSchema:
    def test_top_level_fields(self, algos_payload):
        assert algos_payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert algos_payload["bench"] == "algos_runtime"
        assert algos_payload["quick"] is True
        assert algos_payload["identical"] is True

    def test_every_ported_algorithm_present(self, algos_payload):
        entries = algos_payload["algorithms"]
        assert tuple(entries) == RUNTIME_ALGORITHMS
        for entry in entries.values():
            assert entry["scalar_seconds"] >= 0
            assert entry["runtime_seconds"] >= 0
            assert entry["speedup"] > 0
            assert entry["identical"] is True
            assert entry["total_refs"] > 0
            assert sum(entry["level_counts"]) == entry["total_refs"]
            sim = entry["simulate_seconds"]
            assert sim["scalar"] >= 0 and sim["runtime"] >= 0

    def test_totals_and_headline(self, algos_payload):
        totals = algos_payload["totals"]
        per_algo = algos_payload["algorithms"].values()
        assert totals["scalar_seconds"] == pytest.approx(
            sum(e["scalar_seconds"] for e in per_algo)
        )
        assert algos_payload["speedup_runtime_vs_scalar"] > 0
        with_sim = algos_payload["with_simulation"]
        assert with_sim["scalar_seconds"] >= totals["scalar_seconds"]
        assert with_sim["speedup"] > 0

    def test_workload_section(self, algos_payload):
        workload = algos_payload["workload"]
        assert workload["dataset"] == "epinion"
        assert workload["nodes"] > 0
        assert workload["algorithms"] == list(RUNTIME_ALGORITHMS)

    def test_json_round_trip(self, algos_payload, tmp_path):
        path = write_bench_json(
            algos_payload, tmp_path / "BENCH_algos.json"
        )
        assert json.loads(path.read_text()) == algos_payload

    def test_render_mentions_key_numbers(self, algos_payload):
        text = render_algos_bench(algos_payload)
        assert "runtime vs scalar" in text
        assert "incl. LRU simulation" in text
        assert "identical   : yes" in text


class TestAlgosRegressionGuard:
    def test_divergence_raises(self, monkeypatch):
        """An emitter that changes results must never get a timing."""
        from repro.algorithms import base as algorithms

        real = algorithms.traced_fn

        def crooked(spec, backend="runtime"):
            fn = real(spec, backend)
            if backend != "scalar":
                return fn

            def wrapper(graph, memory, **params):
                return np.asarray(fn(graph, memory, **params)) + 1

            return wrapper

        monkeypatch.setattr(algorithms, "traced_fn", crooked)
        with pytest.raises(BenchRegressionError):
            run_algos_bench(quick_algos_config())


class TestAlgosBenchCLI:
    def test_quick_algos_bench_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_algos.json"
        code = main(
            ["bench", "--suite", "algos", "--quick", "--out", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["bench"] == "algos_runtime"
        assert payload["identical"] is True
        assert "speedup" in capsys.readouterr().out


@pytest.fixture(scope="module")
def frontier_payload():
    from repro.perf.bench import (
        quick_frontier_config,
        run_frontier_bench,
    )

    return run_frontier_bench(quick_frontier_config())


class TestFrontierBench:
    def test_quick_config_is_single_dataset(self):
        from repro.perf.bench import quick_frontier_config

        config = quick_frontier_config()
        assert config.quick
        assert config.datasets == ("epinion",)

    def test_payload_schema(self, frontier_payload):
        assert (
            frontier_payload["schema_version"] == BENCH_SCHEMA_VERSION
        )
        assert frontier_payload["bench"] == "selector_frontier"
        assert frontier_payload["within_tolerance"] is True
        assert frontier_payload["max_regret"] >= 0
        assert "manifest" in frontier_payload

    def test_dataset_entries(self, frontier_payload):
        for entry in frontier_payload["datasets"].values():
            assert entry["nodes"] > 0
            assert entry["selected"]["probe_cycles"] > 0
            assert entry["oracle"]["probe_cycles"] > 0
            assert entry["regret"] >= 0
            assert entry["within_tolerance"] is True
            labels = [p["label"] for p in entry["probes"]]
            assert entry["selected"]["label"] in labels
            assert entry["oracle"]["label"] in labels
            assert entry["predictors"]["degree_skew"] >= 1.0

    def test_selector_within_tolerance_of_oracle(
        self, frontier_payload
    ):
        """Acceptance: chosen probe cycles within 10% of oracle-best
        on every benchmarked dataset."""
        for entry in frontier_payload["datasets"].values():
            oracle = entry["oracle"]["probe_cycles"]
            chosen = entry["selected"]["probe_cycles"]
            assert chosen <= 1.10 * oracle

    def test_json_round_trip(self, frontier_payload, tmp_path):
        path = write_bench_json(
            frontier_payload, tmp_path / "BENCH_selector.json"
        )
        assert json.loads(path.read_text()) == frontier_payload

    def test_render_mentions_selection(self, frontier_payload):
        from repro.perf.bench import render_frontier_bench

        text = render_frontier_bench(frontier_payload)
        assert "selected" in text
        assert "max regret" in text
        assert "break-even" in text

    def test_negative_tolerance_rejected(self):
        from repro.errors import InvalidParameterError
        from repro.perf.bench import (
            quick_frontier_config,
            run_frontier_bench,
        )

        with pytest.raises(InvalidParameterError):
            run_frontier_bench(quick_frontier_config(tolerance=-1.0))

    def test_regression_guard_raises_past_tolerance(
        self, monkeypatch
    ):
        """A selector that misses the oracle by more than the
        tolerance must fail the benchmark, not report it."""
        from dataclasses import replace

        from repro.ordering import select as select_module
        from repro.perf.bench import (
            quick_frontier_config,
            run_frontier_bench,
        )

        real = select_module.select_ordering

        def myopic(graph, **kwargs):
            decision = real(graph, **kwargs)
            inflated = replace(
                decision.chosen,
                probe_cycles=decision.chosen.probe_cycles * 10,
            )
            return replace(decision, chosen=inflated)

        monkeypatch.setattr(
            select_module, "select_ordering", myopic
        )
        with pytest.raises(BenchRegressionError, match="frontier"):
            run_frontier_bench(quick_frontier_config())


class TestFrontierBenchCLI:
    def test_quick_frontier_bench_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_selector.json"
        code = main(
            [
                "bench", "--suite", "frontier", "--quick",
                "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["bench"] == "selector_frontier"
        assert payload["within_tolerance"] is True
        assert "selected" in capsys.readouterr().out
