"""Benchmark trend store: history journal, rolling baseline, gate."""

import json

import pytest

from repro import obs
from repro.errors import InvalidParameterError
from repro.perf.trends import (
    DEFAULT_TREND_THRESHOLD,
    HISTORY_SCHEMA_VERSION,
    TrendError,
    append_history,
    bench_metrics,
    check_trends,
    history_record,
    load_history,
    render_trends,
    trend_report,
)


def gorder_payload(
    batched=0.1, loop=0.3, sha="abc123", machine="ci", quick=True
):
    return {
        "schema_version": 1,
        "bench": "gorder_kernel",
        "quick": quick,
        "kernels": {
            "loop": {"seconds": loop, "updates_per_second": 1e6},
            "batched": {
                "seconds": batched,
                "updates_per_second": 3e6,
            },
        },
        "speedup_batched_vs_loop": loop / batched,
        "manifest": {
            "git_sha": sha,
            "machine": machine,
            "platform": "linux",
            "python": "3.11",
            "created_unix": 1000.0,
        },
    }


def cache_payload(step=0.5, replay=0.05):
    return {
        "schema_version": 1,
        "bench": "cache_replay",
        "quick": False,
        "backends": {
            "step": {"seconds": step},
            "replay": {
                "seconds": replay,
                "accesses_per_second": 2e7,
            },
        },
        "speedup_replay_vs_step": step / replay,
        "manifest": {"git_sha": "abc", "machine": "ci"},
    }



def algos_payload(scalar=0.9, runtime=0.2):
    return {
        "schema_version": 1,
        "bench": "algos_runtime",
        "quick": False,
        "totals": {
            "scalar_seconds": scalar,
            "runtime_seconds": runtime,
        },
        "speedup_runtime_vs_scalar": scalar / runtime,
        "manifest": {"git_sha": "abc", "machine": "ci"},
    }


def selector_payload(regret=0.0, seconds=1.5, cycles=2.0e5):
    return {
        "schema_version": 1,
        "bench": "selector_frontier",
        "quick": False,
        "datasets": {
            "epinion": {"selected": {"probe_cycles": cycles}},
            "pokec": {"selected": {"probe_cycles": cycles / 2}},
        },
        "totals": {"selection_seconds": seconds},
        "max_regret": regret,
        "within_tolerance": True,
        "manifest": {"git_sha": "abc", "machine": "ci"},
    }


class TestBenchMetrics:
    def test_gorder_metrics(self):
        metrics = bench_metrics(gorder_payload())
        assert metrics["batched_seconds"] == 0.1
        assert metrics["loop_seconds"] == 0.3
        assert metrics["speedup_batched_vs_loop"] == pytest.approx(3.0)
        assert metrics["batched_updates_per_second"] == 3e6

    def test_gorder_partitioned_optional(self):
        payload = gorder_payload()
        payload["partitioned"] = {"workers_n_seconds": 0.07}
        metrics = bench_metrics(payload)
        assert metrics["partitioned_workers_n_seconds"] == 0.07
        assert (
            "partitioned_workers_n_seconds"
            not in bench_metrics(gorder_payload())
        )

    def test_cache_metrics(self):
        metrics = bench_metrics(cache_payload())
        assert metrics["replay_seconds"] == 0.05
        assert metrics["speedup_replay_vs_step"] == pytest.approx(10.0)

    def test_algos_metrics(self):
        metrics = bench_metrics(algos_payload())
        assert metrics["scalar_seconds_total"] == 0.9
        assert metrics["runtime_seconds_total"] == 0.2
        assert metrics["speedup_runtime_vs_scalar"] == pytest.approx(
            4.5
        )

    def test_selector_metrics(self):
        metrics = bench_metrics(selector_payload())
        assert metrics["selector_max_regret"] == 0.0
        assert metrics["selector_selection_seconds"] == 1.5
        assert metrics["selector_chosen_cycles_total"] == (
            pytest.approx(3.0e5)
        )

    def test_selector_zero_regret_never_gates(self):
        """A 0 -> 0 regret series has no defined relative change and
        must stay flat, not divide by zero or flag a regression."""
        report = trend_report(
            [
                history_record(selector_payload(regret=0.0))
                for _ in range(4)
            ]
        )
        assert report.ok
        rows = [
            row for row in report.rows
            if row.metric == "selector_max_regret"
        ]
        assert rows and rows[0].change is None

    def test_selector_regret_regression_gates(self):
        records = [
            history_record(selector_payload(regret=r))
            for r in (0.02, 0.02, 0.02, 0.08)
        ]
        report = trend_report(records)
        assert not report.ok
        assert any(
            row.metric == "selector_max_regret" and row.regressed
            for row in report.rows
        )

    def test_every_selector_metric_has_a_direction(self):
        from repro.perf.trends import METRIC_DIRECTIONS

        for name in bench_metrics(selector_payload()):
            assert name in METRIC_DIRECTIONS

    def test_algos_missing_field_named(self):
        payload = algos_payload()
        del payload["totals"]["runtime_seconds"]
        with pytest.raises(TrendError, match="missing"):
            bench_metrics(payload)

    def test_every_algos_metric_has_a_direction(self):
        from repro.perf.trends import METRIC_DIRECTIONS

        for name in bench_metrics(algos_payload()):
            assert name in METRIC_DIRECTIONS

    def test_unknown_suite_rejected(self):
        with pytest.raises(TrendError, match="unknown bench suite"):
            bench_metrics({"bench": "mystery"})

    def test_missing_field_named(self):
        payload = gorder_payload()
        del payload["kernels"]["loop"]
        with pytest.raises(TrendError, match="missing"):
            bench_metrics(payload)


class TestHistoryRecord:
    def test_record_carries_manifest_key(self):
        record = history_record(gorder_payload())
        assert record["schema_version"] == HISTORY_SCHEMA_VERSION
        assert record["kind"] == "bench"
        assert record["git_sha"] == "abc123"
        assert record["machine"] == "ci"
        assert record["quick"] is True

    def test_wrong_schema_version_rejected(self):
        payload = gorder_payload()
        payload["schema_version"] = 2
        with pytest.raises(TrendError, match="schema_version"):
            history_record(payload)


class TestAppendLoad:
    def test_append_then_load_roundtrip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(gorder_payload(), path)
        append_history(cache_payload(), path)
        records = load_history(path)
        assert [r["bench"] for r in records] == [
            "gorder_kernel", "cache_replay",
        ]

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(gorder_payload(), path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "ben')
        assert len(load_history(path)) == 1

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{oops\n")
        append_history(gorder_payload(), path)
        with pytest.raises(TrendError, match="corrupt at line 1"):
            load_history(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TrendError, match="cannot read"):
            load_history(tmp_path / "nope.jsonl")

    def test_foreign_kind_lines_skipped(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text('{"kind": "note", "text": "hi"}\n')
        append_history(gorder_payload(), path)
        assert len(load_history(path)) == 1

    def test_newer_schema_version_rejected(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        record = history_record(gorder_payload())
        record["schema_version"] = HISTORY_SCHEMA_VERSION + 1
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(TrendError, match="schema_version"):
            load_history(path)


class TestTrendReport:
    def records(self, *batched_times, **kwargs):
        return [
            history_record(gorder_payload(batched=t, **kwargs))
            for t in batched_times
        ]

    def test_first_record_is_baseline_not_regression(self):
        report = trend_report(self.records(0.1))
        assert report.ok
        row = {r.metric: r for r in report.rows}["batched_seconds"]
        assert row.baseline is None
        assert row.change is None
        assert row.samples == 0

    def test_regression_past_threshold_fails(self):
        report = trend_report(self.records(0.1, 0.1, 0.13))
        assert not report.ok
        names = {row.metric for row in report.regressions}
        assert "batched_seconds" in names

    def test_within_threshold_passes(self):
        report = trend_report(self.records(0.1, 0.1, 0.11))
        assert report.ok

    def test_improvement_never_regresses(self):
        assert trend_report(self.records(0.1, 0.1, 0.05)).ok

    def test_higher_is_better_direction(self):
        slow = gorder_payload()
        slow["speedup_batched_vs_loop"] = 1.1  # was 3.0
        report = trend_report(
            [history_record(gorder_payload())] * 2
            + [history_record(slow)]
        )
        metrics = {row.metric for row in report.regressions}
        assert "speedup_batched_vs_loop" in metrics

    def test_baseline_is_median_of_window(self):
        report = trend_report(
            self.records(0.1, 0.2, 0.12, 0.1),
            window=3,
        )
        row = {r.metric: r for r in report.rows}["batched_seconds"]
        assert row.baseline == pytest.approx(0.12)
        assert row.samples == 3

    def test_window_excludes_older_entries(self):
        # Only the 2 entries before the newest count with window=2.
        report = trend_report(
            self.records(9.0, 0.1, 0.1, 0.1),
            window=2,
        )
        row = {r.metric: r for r in report.rows}["batched_seconds"]
        assert row.baseline == pytest.approx(0.1)

    def test_series_are_keyed_by_machine_and_quick(self):
        fast_ci = history_record(gorder_payload(batched=0.1))
        slow_laptop = history_record(
            gorder_payload(batched=0.5, machine="laptop")
        )
        # Different machine: the laptop entry must not be gated
        # against the CI baseline.
        report = trend_report([fast_ci, fast_ci, slow_laptop])
        assert report.ok

    def test_bad_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            trend_report([], threshold=0.0)
        with pytest.raises(InvalidParameterError):
            trend_report([], window=0)

    def test_regression_emits_event(self):
        obs.configure(capture=True)
        try:
            trend_report(self.records(0.1, 0.2))
            names = [e["name"] for e in obs.captured()]
            assert "trends.regression" in names
        finally:
            obs.reset()


class TestCheckAndRender:
    def test_check_trends_end_to_end(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(gorder_payload(batched=0.1), path)
        append_history(gorder_payload(batched=0.1), path)
        assert check_trends(path).ok
        append_history(gorder_payload(batched=0.2), path)
        report = check_trends(path)
        assert not report.ok
        text = render_trends(report)
        assert "REGRESSED" in text
        assert "regressed past 20%" in text

    def test_render_empty_history(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text("")
        text = render_trends(check_trends(path))
        assert "no bench records" in text

    def test_default_threshold_is_twenty_percent(self):
        assert DEFAULT_TREND_THRESHOLD == 0.20


class TestCommittedBenchFiles:
    """Acceptance: the repo's BENCH_*.json snapshots ingest cleanly."""

    @pytest.mark.parametrize(
        "name",
        [
            "BENCH_gorder.json",
            "BENCH_cache.json",
            "BENCH_selector.json",
        ],
    )
    def test_committed_bench_ingests_and_passes(self, name, tmp_path):
        import pathlib

        source = pathlib.Path(__file__).parents[2] / name
        if not source.exists():
            pytest.skip(f"{name} not committed")
        payload = json.loads(source.read_text())
        path = tmp_path / "hist.jsonl"
        append_history(payload, path)
        report = check_trends(path)
        assert report.ok  # single entry: baseline, not regression
        assert report.rows
