"""Unit tests for the experiment definitions (on a tiny profile)."""

import pytest

from repro.errors import InvalidParameterError
from repro.graph import datasets
from repro.perf import (
    PROFILES,
    Profile,
    algorithm_params,
    annealing_sweep,
    cache_stall_split,
    cache_stats_table,
    dataset_table,
    get_profile,
    ordering_times,
    rank_orderings,
    relative_to_gorder,
    speedup_matrix,
    window_sweep,
)


@pytest.fixture(scope="module")
def tiny_profile():
    return Profile(
        name="tiny",
        datasets=("epinion",),
        orderings=("original", "random", "gorder"),
        algorithms=("nq", "bfs"),
        pr_iterations=1,
        diam_num_sources=1,
    )


@pytest.fixture(scope="module")
def tiny_matrix(tiny_profile):
    return speedup_matrix(tiny_profile)


class TestProfiles:
    def test_registered_profiles(self):
        assert set(PROFILES) == {"quick", "standard", "full"}

    def test_full_covers_all_datasets(self):
        assert PROFILES["full"].datasets == datasets.DATASET_NAMES

    def test_get_profile_by_name(self):
        assert get_profile("standard").name == "standard"

    def test_get_profile_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "full")
        assert get_profile().name == "full"

    def test_get_profile_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert get_profile().name == "quick"

    def test_unknown_profile(self):
        with pytest.raises(InvalidParameterError, match="unknown"):
            get_profile("nosuch")


class TestAlgorithmParams:
    def test_pagerank_iterations(self, tiny_profile):
        graph = datasets.load("epinion")
        assert algorithm_params("pr", graph, tiny_profile) == {
            "iterations": 1
        }

    def test_sp_source_in_range(self, tiny_profile):
        graph = datasets.load("epinion")
        params = algorithm_params("sp", graph, tiny_profile)
        assert 0 <= params["source"] < graph.num_nodes

    def test_diam_sources(self, tiny_profile):
        graph = datasets.load("epinion")
        params = algorithm_params("diam", graph, tiny_profile)
        assert len(params["sources"]) == 1

    def test_plain_algorithms_no_params(self, tiny_profile):
        graph = datasets.load("epinion")
        assert algorithm_params("bfs", graph, tiny_profile) == {}


class TestSpeedupMatrix:
    def test_complete(self, tiny_profile, tiny_matrix):
        expected = (
            len(tiny_profile.datasets)
            * len(tiny_profile.algorithms)
            * len(tiny_profile.orderings)
        )
        assert len(tiny_matrix) == expected

    def test_relative_to_gorder(self, tiny_matrix):
        relative = relative_to_gorder(tiny_matrix)
        for (_, _, ordering), value in relative.items():
            if ordering == "gorder":
                assert value == pytest.approx(1.0)
            else:
                assert value > 0

    def test_random_slower_than_gorder(self, tiny_matrix):
        relative = relative_to_gorder(tiny_matrix)
        for (dataset, algorithm, ordering), value in relative.items():
            if ordering == "random":
                assert value > 0.9  # random never meaningfully wins

    def test_rank_histogram(self, tiny_matrix):
        histogram = rank_orderings(tiny_matrix)
        assert set(histogram) == {"original", "random", "gorder"}
        series_count = 2  # 1 dataset x 2 algorithms
        for counts in histogram.values():
            assert sum(counts) == series_count
        # Every series assigns each rank exactly once.
        for rank in range(3):
            assert (
                sum(counts[rank] for counts in histogram.values())
                == series_count
            )


class TestOtherExperiments:
    def test_cache_stall_split(self, tiny_profile):
        results = cache_stall_split(
            tiny_profile, dataset_name="epinion"
        )
        assert ("nq", "original") in results
        assert ("bfs", "gorder") in results
        for result in results.values():
            assert 0 <= result.cost.stall_fraction <= 1

    def test_ordering_times(self, tiny_profile):
        times = ordering_times(tiny_profile)
        assert times[("gorder", "epinion")] > 0
        assert times[("original", "epinion")] >= 0

    def test_cache_stats_table(self, tiny_profile):
        rows = cache_stats_table(tiny_profile, "epinion")
        assert set(rows) == set(tiny_profile.orderings)
        for result in rows.values():
            assert result.stats.l1_refs > 0

    def test_window_sweep(self, tiny_profile):
        results = window_sweep(
            tiny_profile, dataset_name="epinion", windows=(1, 5)
        )
        assert set(results) == {1, 5}
        assert results[5].cycles > 0

    def test_annealing_sweep(self):
        results = annealing_sweep(
            dataset_name="epinion",
            step_factors=(0.1,),
            energy_factors=(0.0, 1000.0),
        )
        # Local search (k=0) must beat accept-everything (huge k).
        assert results[(0.1, 0.0)] < results[(0.1, 1000.0)]

    def test_dataset_table(self):
        rows = dataset_table()
        assert len(rows) == 9
        assert rows[0]["dataset"] == "epinion"
        assert {row["category"] for row in rows} == {"social", "web"}


class TestDatasetOverride:
    def test_repro_datasets_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "full")
        monkeypatch.setenv("REPRO_DATASETS", "epinion, pokec")
        profile = get_profile()
        assert profile.datasets == ("epinion", "pokec")

    def test_unknown_dataset_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_DATASETS", "nosuch")
        from repro.errors import UnknownDatasetError

        with pytest.raises(UnknownDatasetError):
            get_profile("quick")

    def test_blank_override_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_DATASETS", " , ")
        with pytest.raises(InvalidParameterError):
            get_profile("quick")


class TestMedianOverSeeds:
    def test_random_ordering_uses_median_of_seeds(self):
        profile = Profile(
            name="tiny-seeds",
            datasets=("epinion",),
            orderings=("random",),
            algorithms=("nq",),
            random_seeds=(1, 2, 3),
        )
        matrix = speedup_matrix(profile)
        representative = matrix[("epinion", "nq", "random")]
        # The representative must equal one of the individual runs,
        # and sit between the extremes.
        from repro.graph import datasets as ds
        from repro.perf import run_cell

        graph = ds.load("epinion")
        cycles = sorted(
            run_cell(graph, "nq", "random", seed=s).cycles
            for s in (1, 2, 3)
        )
        assert representative.cycles == cycles[1]

    def test_deterministic_ordering_runs_once(self):
        profile = Profile(
            name="tiny-det",
            datasets=("epinion",),
            orderings=("gorder",),
            algorithms=("nq",),
            random_seeds=(1, 2, 3),
        )
        matrix = speedup_matrix(profile)
        assert matrix[("epinion", "nq", "gorder")].cycles > 0


class TestProfileCacheBackend:
    def test_default_is_replay(self):
        profile = Profile(name="d", datasets=("epinion",))
        assert profile.cache_backend == "replay"

    def test_replace_override(self):
        from dataclasses import replace

        base = Profile(name="d", datasets=("epinion",))
        profile = replace(base, cache_backend="step")
        assert profile.cache_backend == "step"

    def test_matrix_identical_across_backends(self):
        base = Profile(
            name="parity",
            datasets=("epinion",),
            orderings=("gorder",),
            algorithms=("nq",),
        )
        from dataclasses import replace

        fast = speedup_matrix(base)
        slow = speedup_matrix(
            replace(base, cache_backend="step")
        )
        key = ("epinion", "nq", "gorder")
        assert fast[key].cycles == slow[key].cycles
        assert fast[key].stats == slow[key].stats
