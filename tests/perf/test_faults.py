"""Tests for the deterministic fault-injection harness."""

import time

import pytest

from repro.errors import InvalidParameterError
from repro.perf.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    SweepKill,
    parse_fault_spec,
)

CELL = ("epinion", "nq", "gorder", 7)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError, match="kind"):
            FaultSpec("d", "a", "o", kind="explode")

    def test_matching(self):
        spec = FaultSpec("epinion", "nq", "gorder")
        assert spec.matches(*CELL)
        assert not spec.matches("epinion", "nq", "rcm", 7)

    def test_seed_narrowing(self):
        spec = FaultSpec("epinion", "nq", "gorder", seed=5)
        assert spec.matches("epinion", "nq", "gorder", 5)
        assert not spec.matches(*CELL)

    def test_times_semantics(self):
        spec = FaultSpec("d", "a", "o", times=2)
        assert spec.triggers(0) and spec.triggers(1)
        assert not spec.triggers(2)
        assert FaultSpec("d", "a", "o", times=-1).triggers(10 ** 6)

    def test_builtin_error_type(self):
        spec = FaultSpec("d", "a", "o", error_type="MemoryError")
        assert isinstance(spec.exception(), MemoryError)

    def test_unknown_error_type_rejected(self):
        spec = FaultSpec("d", "a", "o", error_type="NotAnException")
        with pytest.raises(InvalidParameterError, match="error type"):
            spec.exception()


class TestFaultPlan:
    def test_empty_plan_is_falsy_and_inert(self):
        plan = FaultPlan()
        assert not plan
        plan.apply_in_cell(*CELL, attempt=0)
        plan.kill_after_cell(*CELL)

    def test_error_raises_for_matching_cell_only(self):
        plan = FaultPlan((FaultSpec("epinion", "nq", "gorder"),))
        with pytest.raises(InjectedFault):
            plan.apply_in_cell(*CELL, attempt=0)
        plan.apply_in_cell("epinion", "nq", "rcm", 7, attempt=0)

    def test_deterministic_across_instances(self):
        """Stateless: a rebuilt plan behaves identically (the
        property kill/resume and subprocess transport rely on)."""
        spec = FaultSpec("epinion", "nq", "gorder", times=2)
        for plan in (FaultPlan((spec,)),
                     FaultPlan.from_payload(
                         FaultPlan((spec,)).to_payload())):
            with pytest.raises(InjectedFault):
                plan.apply_in_cell(*CELL, attempt=0)
            with pytest.raises(InjectedFault):
                plan.apply_in_cell(*CELL, attempt=1)
            plan.apply_in_cell(*CELL, attempt=2)

    def test_delay_sleeps(self):
        plan = FaultPlan(
            (FaultSpec("epinion", "nq", "gorder", kind="delay",
                       delay_seconds=0.05),)
        )
        start = time.perf_counter()
        plan.apply_in_cell(*CELL, attempt=0)
        assert time.perf_counter() - start >= 0.04

    def test_hang_bounded_sleep_without_cancel(self):
        plan = FaultPlan(
            (FaultSpec("epinion", "nq", "gorder", kind="hang",
                       delay_seconds=0.05),)
        )
        start = time.perf_counter()
        plan.apply_in_cell(*CELL, attempt=0)
        assert time.perf_counter() - start >= 0.04

    def test_hang_interrupted_by_cancel_check(self):
        """The serve-daemon contract: a hang that would outlive any
        deadline is cut short at the next cancellation poll."""
        plan = FaultPlan(
            (FaultSpec("epinion", "nq", "gorder", kind="hang"),)
        )  # no delay_seconds: sleeps DEFAULT_HANG_SECONDS uncancelled
        start = time.perf_counter()

        def cancel_check():
            if time.perf_counter() - start > 0.05:
                raise InjectedFault("deadline fired")

        with pytest.raises(InjectedFault, match="deadline fired"):
            plan.apply_in_cell(
                *CELL, attempt=0, cancel_check=cancel_check
            )
        assert time.perf_counter() - start < 5

    def test_hang_polls_cancel_promptly(self):
        """Cancellation latency is bounded by the poll interval, not
        the hang duration."""
        plan = FaultPlan(
            (FaultSpec("epinion", "nq", "gorder", kind="hang",
                       delay_seconds=30.0),)
        )
        calls = []

        def cancel_check():
            calls.append(time.perf_counter())
            if len(calls) >= 3:
                raise InjectedFault("stop")

        with pytest.raises(InjectedFault):
            plan.apply_in_cell(
                *CELL, attempt=0, cancel_check=cancel_check
            )
        # Three polls happen within a few poll intervals.
        assert calls[-1] - calls[0] < 1.0

    def test_hang_respects_times(self):
        plan = FaultPlan(
            (FaultSpec("epinion", "nq", "gorder", kind="hang",
                       delay_seconds=0.05, times=1),)
        )
        start = time.perf_counter()
        plan.apply_in_cell(*CELL, attempt=1)  # beyond times: no-op
        assert time.perf_counter() - start < 0.04

    def test_kill_fires_post_cell(self):
        plan = FaultPlan(
            (FaultSpec("epinion", "nq", "gorder", kind="kill"),)
        )
        plan.apply_in_cell(*CELL, attempt=0)  # kill is not in-cell
        with pytest.raises(SweepKill):
            plan.kill_after_cell(*CELL)

    def test_kill_is_base_exception(self):
        assert not issubclass(SweepKill, Exception)

    def test_payload_round_trip(self):
        plan = FaultPlan(
            (
                FaultSpec("d", "a", "o", kind="delay",
                          delay_seconds=1.5),
                FaultSpec("d", "a", "p", kind="error", times=3,
                          error_type="MemoryError"),
            )
        )
        rebuilt = FaultPlan.from_payload(plan.to_payload())
        assert rebuilt.specs == plan.specs


class TestParseFaultSpec:
    def test_full_spec(self):
        spec = parse_fault_spec(
            "dataset=epinion,algorithm=nq,ordering=gorder,"
            "kind=delay,delay=2.5,times=3,seed=9"
        )
        assert spec == FaultSpec(
            "epinion", "nq", "gorder", kind="delay", seed=9,
            times=3, delay_seconds=2.5,
        )

    def test_defaults_to_permanent_error(self):
        spec = parse_fault_spec(
            "dataset=d,algorithm=a,ordering=o"
        )
        assert spec.kind == "error"
        assert spec.times == -1

    def test_missing_required_key(self):
        with pytest.raises(InvalidParameterError, match="ordering"):
            parse_fault_spec("dataset=d,algorithm=a")

    def test_unknown_key(self):
        with pytest.raises(InvalidParameterError, match="unknown"):
            parse_fault_spec(
                "dataset=d,algorithm=a,ordering=o,bogus=1"
            )

    def test_malformed_fragment(self):
        with pytest.raises(InvalidParameterError, match="key=value"):
            parse_fault_spec("dataset=d,algorithm")
