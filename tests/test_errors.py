"""The exception hierarchy contract."""

import pytest

from repro.errors import (
    GraphFormatError,
    InvalidParameterError,
    InvalidPermutationError,
    ReproError,
    UnknownAlgorithmError,
    UnknownDatasetError,
    UnknownOrderingError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            GraphFormatError,
            InvalidPermutationError,
            InvalidParameterError,
            UnknownOrderingError,
            UnknownDatasetError,
            UnknownAlgorithmError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_repro_error_is_an_exception(self):
        assert issubclass(ReproError, Exception)
        assert not issubclass(ReproError, (TypeError, ValueError))

    def test_catch_all_boundary(self):
        """Library misuse is catchable with one except clause."""
        from repro.graph import datasets
        from repro.ordering import compute_ordering

        caught = 0
        for trigger in (
            lambda: datasets.load("nope"),
            lambda: compute_ordering(
                "nope", datasets.load("epinion")
            ),
        ):
            try:
                trigger()
            except ReproError:
                caught += 1
        assert caught == 2
